/**
 * @file
 * Completed-job cache with a crash-safe JSONL journal, columnar
 * segment sealing, and continuous aggregates.
 *
 * Every finished job (ok, failed, timed out, or hung) is recorded in
 * memory keyed by its scenario hash AND appended to
 * <dir>/journal.jsonl, one JSON object per line, flushed
 * immediately — so a sweep killed mid-flight loses at most the jobs
 * that were still running. The JSONL file is the durability
 * baseline and debug sink; on top of it the store:
 *
 *  - buffers journaled rows and seals them in bounded chunks to
 *    <dir>/segments/NNNNNNNN.seg (columnar binary, CRC-checked; see
 *    sweep/segment.hh) so resume and reporting never re-parse
 *    millions of JSON lines;
 *  - feeds every row to a SweepAggregator (sweep/aggregate.hh) and
 *    checkpoints the aggregate state to <dir>/aggregates.ckpt after
 *    each seal, with a coverage watermark {jobs, sealed segments,
 *    JSONL byte offset}.
 *
 * Resume (loadJournal) restores in O(tail) rather than O(sweep):
 * checkpoint aggregates + sealed-segment rows + a replay of only the
 * JSONL tail past the checkpoint's byte offset. Crash consistency:
 *
 *  - a row reaches journal.jsonl before it can reach a segment or
 *    the checkpoint, so the JSONL tail always recovers anything a
 *    torn segment or missing checkpoint lost;
 *  - torn/corrupt segments are quarantined (renamed to `.torn`) and
 *    their rows re-read from the tail; segments sealed after the
 *    last checkpoint are set aside (`.orphan`) the same way so no
 *    row is ever aggregated twice;
 *  - a torn or corrupt JSONL line can only live in the tail (the
 *    checkpoint is written strictly after flushed lines); each one
 *    is quarantined to <dir>/journal.quarantine as
 *    `{"line": N, "reason": "...", "data": "<raw line>"}` and the
 *    job simply re-runs;
 *  - with no checkpoint at all (old journals, or a checkpoint
 *    invalidated by a damaged covered segment) the store falls back
 *    to the full JSONL scan, rebuilding aggregates from scratch and
 *    rewriting the journal atomically with only the good lines.
 *
 * Injected journal faults (journal.corrupt / journal.truncate /
 * journal.torn_segment) flip the store into "crashed" mode: no
 * further seals or checkpoints, emulating a writer that died — so
 * the resilience tests exercise exactly the recovery paths above.
 */

#ifndef IRTHERM_SWEEP_RESULT_STORE_HH
#define IRTHERM_SWEEP_RESULT_STORE_HH

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/errors.hh"

namespace irtherm::sweep
{

class JsonValue;

/** Terminal state of one job. */
enum class JobStatus
{
    Ok,
    Failed,  ///< resolve/build/solve raised (e.g. diverging CG)
    Timeout, ///< exceeded the per-job deadline cooperatively
    Hung,    ///< unresponsive past the hard deadline; abandoned
};

const char *jobStatusName(JobStatus status);

/** Parse a status name ("ok", "failed", ...); ConfigError else. */
JobStatus parseJobStatus(const std::string &name);

/**
 * Per-job resource accounting (journal `resources` object). All
 * fields cover the job's *total* footprint across every attempt.
 */
struct JobResources
{
    /** CPU seconds charged to the job's worker/watchdog thread. */
    double cpuSeconds = 0.0;
    /** How far this job pushed up the process peak-RSS high-water
     *  mark (kilobytes); 0 for most jobs. */
    std::int64_t peakRssDeltaKb = 0;
    /** Solver iterations summed over attempts. */
    std::size_t solverIterations = 0;
    /** Extra executions beyond the first (attempts - 1). */
    std::size_t retries = 0;
    /** Fallback-tier escalations in the final attempt. */
    int fallbackEscalations = 0;
};

/** Everything a completed job reports. */
struct JobResult
{
    std::string hash; ///< 16-hex scenario hash (the cache key)
    std::string name; ///< display label
    JobStatus status = JobStatus::Ok;
    std::string error; ///< failure text; empty when ok
    /** Taxonomy class of the failure (None when ok). */
    ErrorClass errorClass = ErrorClass::None;
    /** Executions it took to reach this terminal state (>= 1). */
    std::size_t attempts = 1;
    /** Solver fallback escalations in the final attempt. */
    int fallbackTier = 0;
    double wallSeconds = 0.0;

    // Thermal summary (valid when status == Ok).
    double peakCelsius = 0.0;     ///< hottest silicon cell
    double minCelsius = 0.0;      ///< coolest silicon cell
    double gradientKelvin = 0.0;  ///< peak - min (the paper's dT)
    std::string hottestUnit;      ///< block holding the peak
    double heatPrimaryWatts = 0.0;   ///< through the cooling side
    double heatSecondaryWatts = 0.0; ///< through the package path
    std::size_t cgIterations = 0; ///< steady-solve iterations
    bool warmStarted = false;     ///< seeded from a cached neighbor
    /** Answered from the verified impulse-response cache (a GEMV
     *  instead of an iterative solve). */
    bool impulseCacheHit = false;
    /** Per-block steady silicon temperatures (celsius). */
    std::vector<std::pair<std::string, double>> blockCelsius;
    /** Resource accounting across all attempts. */
    JobResources resources;
    /** Sweep-axis assignments that produced this scenario (journal
     *  `axes` object, omitted when empty) — lets aggregates group by
     *  axis value from the journal alone. */
    std::vector<std::pair<std::string, std::string>> axisValues;
    /** Fabric provenance: id of the worker that executed the job
     *  (journal `worker` field, omitted when empty — single-process
     *  sweeps journal byte-identically to pre-fabric builds). */
    std::string worker;
    /** Lease renewals the executing worker performed while holding
     *  this job (journal `lease_renewals`, omitted when zero). */
    std::size_t leaseRenewals = 0;
    /** Leases holding this job that expired before it completed —
     *  each one re-queued it (journal `lease_expiries`, omitted when
     *  zero). Stamped by the coordinator at accept time. */
    std::size_t leaseExpiries = 0;
    /** Times the job was handed out again after its first lease
     *  (journal `re_leases`, omitted when zero). */
    std::size_t reLeases = 0;

    /** Serialize as one journal JSONL line (no trailing newline). */
    std::string toJsonLine() const;

    /**
     * Parse a journal line; throws (ConfigError) on malformed
     * entries. The resilience fields (`error_class`, `attempts`,
     * `fallback_tier`), the `resources` / `axes` objects, and the
     * fabric provenance fields (`worker`, `lease_renewals`) are
     * optional so journals written before they existed still load.
     */
    static JobResult fromJsonLine(const std::string &line,
                                  const std::string &context);

    /** Same contract over an already-parsed JSON object (the fabric
     *  /complete endpoint receives results embedded in a larger
     *  document). */
    static JobResult fromJson(const JsonValue &doc,
                              const std::string &context);
};

class SweepAggregator;

/** Tuning knobs for ResultStore's analytics layer. */
struct ResultStoreOptions
{
    /** Rows buffered before sealing a columnar segment (and writing
     *  an aggregate checkpoint). 0 disables segments entirely —
     *  JSONL-only operation, exactly the pre-analytics behavior. */
    std::size_t segmentJobs = 2048;
};

/**
 * Thread-safe result cache over an output directory. Creates the
 * directory on construction; add() appends to the journal under a
 * lock and flushes before returning.
 */
class ResultStore
{
  public:
    explicit ResultStore(const std::string &dir,
                         ResultStoreOptions options = {});
    ~ResultStore();

    /**
     * Reload prior results: aggregate checkpoint + sealed segments +
     * JSONL tail (see file comment). Returns entries loaded.
     * Corrupt or truncated artifacts are quarantined rather than
     * fatal; quarantined() / quarantinedSegments() report how many
     * this call set aside.
     */
    std::size_t loadJournal();

    /** JSONL lines quarantined by the last loadJournal(). */
    std::size_t quarantined() const;

    /** Torn/corrupt segments quarantined by the last loadJournal(). */
    std::size_t quarantinedSegments() const;

    bool has(const std::string &hash) const;

    /** Result for a hash, or nullptr. The pointer stays valid until
     *  the store is destroyed (results are never removed). */
    const JobResult *findResult(const std::string &hash) const;

    /** Record a completed job and journal it durably. */
    void add(const JobResult &result);

    /**
     * Seal any buffered rows into a final (possibly short) segment
     * and write the aggregate checkpoint. Call when the sweep
     * finishes; idempotent; a no-op after an injected journal fault
     * (crashed mode) so recovery tests see the artifacts a dead
     * writer would have left.
     */
    void finalize();

    std::size_t size() const;

    /** Segments sealed so far (loaded + written). */
    std::size_t sealedSegments() const;

    /** Current aggregates as `irtherm.sweep.aggregates.v1` JSON. */
    std::string aggregatesJson() const;

    const std::string &directory() const { return dir_; }
    std::string journalPath() const;
    std::string quarantinePath() const;
    std::string checkpointPath() const;

  private:
    std::size_t loadJournalFullScan();
    void sealPending();
    void writeCheckpoint();

    mutable std::mutex mu;
    std::string dir_;
    ResultStoreOptions options;
    std::map<std::string, JobResult> byHash;
    std::ofstream journal;
    std::size_t quarantinedLines = 0;
    std::size_t quarantinedSegs = 0;

    std::unique_ptr<SweepAggregator> agg;
    /** Journaled rows not yet sealed into a segment. */
    std::vector<JobResult> pending;
    /** Index the next sealed segment will take. */
    std::uint64_t nextSegmentIndex = 0;
    /** Byte offset in journal.jsonl up to which rows are aggregated
     *  (the next checkpoint's coverage watermark). */
    std::uint64_t journalBytes = 0;
    /** An injected journal fault fired: emulate a dead writer (no
     *  more seals or checkpoints). */
    bool crashed = false;
};

} // namespace irtherm::sweep

#endif // IRTHERM_SWEEP_RESULT_STORE_HH
