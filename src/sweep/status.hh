/**
 * @file
 * Live progress snapshot of a running sweep, serialized as the
 * `irtherm.sweep.status.v1` JSON document behind the /status
 * endpoint.
 *
 * The board is a passive aggregate: workers call jobStarted() /
 * jobFinished() around each job, and statusJson() renders whatever
 * is true at that instant — done/running/failed/hung counts, an ETA
 * extrapolated from the trailing completion throughput, and each
 * registered thread's current span path (from the global
 * SpanRecorder), which is what shows a watcher that worker 2 is
 * three fallback tiers deep in job 37 *right now*.
 */

#ifndef IRTHERM_SWEEP_STATUS_HH
#define IRTHERM_SWEEP_STATUS_HH

#include <cstddef>
#include <deque>
#include <mutex>
#include <string>

#include "sweep/result_store.hh"

namespace irtherm::sweep
{

/** Thread-safe live counters + snapshot serializer for one sweep. */
class SweepStatusBoard
{
  public:
    /** Fix the denominators before workers start. */
    void begin(const std::string &planName, std::size_t totalJobs,
               std::size_t pendingJobs, std::size_t cachedJobs,
               std::size_t workers);

    /** A worker picked up a job (first attempt). */
    void jobStarted();

    /**
     * Update the worker count after begin(). A fabric coordinator
     * does not know its fleet up front — workers announce themselves
     * by leasing, so the count grows as they connect.
     */
    void setWorkers(std::size_t count);

    /** A job reached a terminal state. */
    void jobFinished(JobStatus status);

    /** Render the irtherm.sweep.status.v1 JSON document. */
    std::string statusJson() const;

  private:
    mutable std::mutex mu;
    std::string plan;
    std::size_t total = 0;
    std::size_t pending = 0;
    std::size_t cached = 0;
    std::size_t workers = 0;
    std::size_t running = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timedOut = 0;
    std::size_t hung = 0;
    double beginSeconds = 0.0; ///< monotonic, shared trace epoch
    /** Monotonic completion stamps of the most recent jobs (trailing
     *  throughput window for the ETA). */
    std::deque<double> finishStamps;
};

} // namespace irtherm::sweep

#endif // IRTHERM_SWEEP_STATUS_HH
