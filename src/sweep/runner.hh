/**
 * @file
 * Batch job runner: schedules expanded scenarios across worker
 * threads with failure isolation, per-job deadlines, steady-state
 * warm-start reuse, and journal-backed resume.
 *
 * Scheduling model: the runner owns its worker threads (one job per
 * worker) and *disables* the numeric kernels' thread-pool
 * parallelism for the duration of the sweep, so each job runs its
 * solves single-threaded. Running N single-threaded jobs side by
 * side is both faster for a batch and immune to the nested-pool
 * serialization the base::ThreadPool region lock would impose (PR 2
 * documents why nesting parallel regions is a hazard). PR 2's
 * serial-vs-parallel bit-identity guarantee means per-job results do
 * not change because of this.
 *
 * Failure isolation: a job that throws (bad scenario key, missing
 * file, diverging CG solve) is recorded as `failed` with the error
 * text and its taxonomy class (base/errors.hh); its siblings are
 * unaffected. Retryable classes (numeric, io) get up to
 * SweepOptions::maxRetries fresh attempts with exponential backoff.
 * A job that exceeds the per-job deadline at a cooperative
 * checkpoint (resolve, model build, every 32 transient samples) is
 * recorded as `timeout`; one that is still unresponsive at the
 * watchdog's hard deadline (timeout x grace factor) has its thread
 * abandoned and is recorded as `hung`.
 *
 * Warm starts: jobs sharing a stack hash (same floorplan + config
 * keys, i.e. the same RC network) seed their steady CG solve from
 * the most recent completed neighbor's temperature-rise vector.
 *
 * Resume: with SweepOptions::resume, previously journaled hashes are
 * skipped entirely — a re-run of a completed sweep performs zero
 * simulations.
 */

#ifndef IRTHERM_SWEEP_RUNNER_HH
#define IRTHERM_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "sweep/plan.hh"
#include "sweep/result_store.hh"

namespace irtherm::sweep
{

/** Runner configuration. */
struct SweepOptions
{
    /** Output directory: journal, reports, per-job map files. */
    std::string outDir = "sweep_out";
    /** Concurrent jobs; 0 = one per hardware thread (the planned
     *  global pool width). */
    std::size_t workers = 0;
    /** Per-job deadline in seconds; 0 disables. Checked at phase
     *  boundaries, so a job overruns by at most one phase. */
    double jobTimeoutSeconds = 0.0;
    /**
     * Extra executions allowed for a job whose failure class is
     * retryable (NumericError / IoError); config errors and timeouts
     * never retry. 0 disables retry.
     */
    std::size_t maxRetries = 2;
    /** First-retry delay; doubles per subsequent retry. */
    double retryBackoffSeconds = 0.05;
    /**
     * With a deadline set, each job runs under a watchdog: a job
     * still unresponsive at jobTimeoutSeconds * watchdogGraceFactor
     * (i.e. past every cooperative checkpoint; floored at deadline
     * + 0.5 s so tiny deadlines keep resolving cooperatively) is
     * abandoned and recorded as `hung`. Must be >= 1.
     */
    double watchdogGraceFactor = 1.5;
    /** Skip scenarios already present in the journal. */
    bool resume = false;
    /**
     * Steady jobs sharing one stack hash switch to the
     * impulse-response superposition path once the plan holds at
     * least this many of them (building the response matrix costs
     * one solve per block, so it must amortize). 0 disables
     * superposition for the whole sweep; scenarios can also opt out
     * individually with `solver.superposition false`.
     */
    std::size_t superpositionMinJobs = 8;
    /**
     * Completed jobs per sealed columnar journal segment (and per
     * aggregate checkpoint); 0 disables segments and checkpoints
     * entirely (JSONL-only journaling). See sweep/segment.hh.
     */
    std::size_t segmentJobs = 2048;
    /** Write report.csv / report.json after the batch. */
    bool writeReports = true;
    /**
     * Stop claiming new jobs once this many have executed (0 = run
     * all). This simulates a killed process for the resume tests —
     * the journal then holds exactly the executed jobs. Exact with
     * workers == 1; with more workers in-flight jobs still finish.
     */
    std::size_t stopAfter = 0;
    /**
     * Serve live telemetry (/metrics, /status, /healthz) for the
     * duration of the sweep: -1 disables, 0 picks an ephemeral port,
     * anything else binds that port. The server lives on one
     * listener thread and binds serveBindAddress.
     */
    int servePort = -1;
    /** Bind address for the status server (loopback by default; see
     *  the security note in obs/http_server.hh). */
    std::string serveBindAddress = "127.0.0.1";
    /**
     * Called once the status server is listening, with the bound
     * port (resolves servePort == 0). Runs before any job starts, so
     * tests and scripts can connect while the sweep is in flight.
     */
    std::function<void(int)> onServerStart;
    /**
     * Shared content-addressed result cache, injected as hooks so the
     * sweep layer stays independent of where the cache lives (the
     * fabric's on-disk store, a test double, ...). lookup returns
     * true and fills @p out when the scenario hash has a cached Ok
     * result; store is called with every fresh Ok result. Either may
     * be empty (no shared cache).
     */
    std::function<bool(const std::string &hash, JobResult &out)>
        sharedCacheLookup;
    std::function<void(const JobResult &)> sharedCacheStore;
};

/** What a sweep did, plus where it wrote its artifacts. */
struct SweepSummary
{
    std::size_t total = 0;      ///< expanded scenarios
    std::size_t executed = 0;   ///< simulated this run
    std::size_t ok = 0;         ///< executed and succeeded
    std::size_t failed = 0;     ///< executed and failed
    std::size_t timedOut = 0;   ///< executed and hit the deadline
    std::size_t hung = 0;       ///< abandoned by the watchdog
    std::size_t cached = 0;     ///< skipped: journaled by a prior run
    std::size_t duplicates = 0; ///< skipped: same hash earlier in plan
    std::size_t warmStarted = 0;///< executed with a CG warm start
    /** Jobs answered from the verified impulse-response cache. */
    std::size_t impulseCacheHits = 0;
    /** Jobs answered from the shared content-addressed result cache
     *  (SweepOptions::sharedCacheLookup) instead of simulated. */
    std::size_t sharedCacheHits = 0;
    std::size_t retried = 0;    ///< jobs that needed > 1 attempt
    std::size_t fallbacks = 0;  ///< jobs whose solve used a fallback
    std::size_t quarantined = 0;///< journal lines set aside on resume
    /** Torn/corrupt segments set aside on resume. */
    std::size_t quarantinedSegments = 0;
    std::string outDir;
    std::string journalPath;
    std::string csvPath;  ///< empty unless reports were written
    std::string jsonPath; ///< empty unless reports were written
};

/**
 * Single-job execution engine: everything between "here is a
 * scenario" and "here is its terminal JobResult" — failure isolation,
 * bounded retry with backoff, the cooperative deadline and watchdog
 * hard deadline, warm-start reuse across jobs, and resource
 * accounting across attempts. runSweep() drives one of these from
 * its scheduler threads; a fabric worker drives one from its lease
 * loop — the same engine either way, so local and distributed
 * execution of a scenario cannot diverge.
 *
 * Thread-safe: run() may be called from several threads at once
 * (runSweep does exactly that). Construction disables the numeric
 * kernels' thread-pool parallelism for the executor's lifetime (see
 * the scheduling-model note at the top of this file); destruction
 * restores it and gives watchdog-abandoned threads a bounded chance
 * to finish.
 */
class JobExecutor
{
  public:
    explicit JobExecutor(const SweepOptions &opts);
    ~JobExecutor();

    JobExecutor(const JobExecutor &) = delete;
    JobExecutor &operator=(const JobExecutor &) = delete;

    /**
     * Run @p spec to a terminal state: retries, deadline, watchdog.
     * @p allowSuperposition gates the impulse-response fast path
     * (the caller knows whether enough same-stack jobs exist for the
     * response matrix to amortize); @p workerLabel names the logical
     * worker in spans and /status. Never throws for per-job failures.
     */
    JobResult run(const ScenarioSpec &spec,
                  bool allowSuperposition = false,
                  const std::string &workerLabel = "");

    /** Join watchdog-abandoned job threads that finish within
     *  @p budgetSeconds total; detach the rest. */
    void reapAbandoned(double budgetSeconds);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/** Expand @p plan and run it to completion under @p opts. */
SweepSummary runSweep(const SweepPlan &plan, const SweepOptions &opts);

} // namespace irtherm::sweep

#endif // IRTHERM_SWEEP_RUNNER_HH
