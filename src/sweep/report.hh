/**
 * @file
 * Aggregate sweep reporters.
 *
 * Three consumers, three formats:
 *  - report.csv: one row per expanded scenario with its axis values
 *    and thermal summary — spreadsheet / pandas fodder;
 *  - report.json (schema "irtherm.sweep.v1"): the machine-readable
 *    batch record, one result object per scenario in expansion
 *    order;
 *  - a Markdown summary table rendered from journal entries (the
 *    tools/sweep_report converter).
 */

#ifndef IRTHERM_SWEEP_REPORT_HH
#define IRTHERM_SWEEP_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "sweep/plan.hh"
#include "sweep/result_store.hh"
#include "sweep/runner.hh"

namespace irtherm::sweep
{

/**
 * CSV table over the expanded job list: name, hash, status, one
 * column per sweep axis, then the thermal summary columns.
 */
void writeSweepCsv(std::ostream &os, const SweepPlan &plan,
                   const std::vector<ScenarioSpec> &jobs,
                   const ResultStore &store);

/** The "irtherm.sweep.v1" JSON batch record. */
void writeSweepJson(std::ostream &os, const SweepPlan &plan,
                    const std::vector<ScenarioSpec> &jobs,
                    const ResultStore &store,
                    const SweepSummary &summary);

/**
 * Markdown summary table (hottest unit, peak T, gradient, CG
 * iterations, status per scenario) over journal entries.
 */
std::string renderMarkdownSummary(const std::vector<JobResult> &results,
                                  const std::string &title);

/**
 * Markdown "slowest jobs" table: the top `n` journal entries by CPU
 * seconds (from the per-job resources accounting), with wall time,
 * RSS growth, solver iterations, retries and fallback escalations.
 * Ties break on wall seconds, then scenario name, so the ordering is
 * stable across runs.
 */
std::string renderTopJobsMarkdown(const std::vector<JobResult> &results,
                                  std::size_t n);

/**
 * Markdown summary rendered from an `irtherm.sweep.aggregates.v1`
 * document (SweepAggregator::toJson() / the `/aggregates` endpoint /
 * a checkpoint file) instead of per-row journal entries: state
 * counts, wall-time quantiles, temperature spread, per-axis
 * group-bys, and the streaming top-slowest table. Size of the output
 * depends on the number of axis values and temperature bins, never
 * on the number of jobs — this is the O(1)-in-sweep-size report for
 * million-job journals. fatal() on a malformed document.
 */
std::string renderAggregatesMarkdown(const std::string &aggregatesJson,
                                     const std::string &title);

} // namespace irtherm::sweep

#endif // IRTHERM_SWEEP_REPORT_HH
