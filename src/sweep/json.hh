/**
 * @file
 * Minimal JSON reader for sweep plans and journals.
 *
 * irtherm's exporters *write* JSON (obs/export), but until the sweep
 * engine nothing needed to read it back. This is a small strict
 * recursive-descent parser over the full JSON grammar (objects,
 * arrays, strings with escapes, numbers, booleans, null) with the
 * config_io error philosophy: malformed input is fatal() with a
 * line/column, never silently skipped.
 *
 * Object member order is preserved (a vector of pairs, not a map) so
 * callers can report duplicate keys and keep deterministic iteration,
 * but lookup is by name via find()/at().
 */

#ifndef IRTHERM_SWEEP_JSON_HH
#define IRTHERM_SWEEP_JSON_HH

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace irtherm::sweep
{

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text; ///< String payload
    std::vector<JsonValue> items; ///< Array payload
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by name; nullptr when absent. @pre isObject() */
    const JsonValue *find(const std::string &key) const;

    /** Object member by name; fatal() when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Human-readable kind name for error messages. */
    static const char *kindName(Kind kind);
};

/**
 * Parse one JSON document; fatal() on syntax errors or trailing
 * non-whitespace. @p context names the source in error messages
 * (a file path, "journal line 12", ...).
 */
JsonValue parseJson(const std::string &text, const std::string &context);

/** Load and parse a JSON file by path. */
JsonValue loadJsonFile(const std::string &path);

/**
 * Canonical text form of a JSON scalar: strings pass through,
 * booleans become "1"/"0", numbers take their shortest round-trip
 * form (so 0.50, 5e-1, and 0.5 canonicalize identically). fatal()
 * on arrays, objects, and null — scenario settings are
 * scalar-valued.
 */
std::string scalarToString(const JsonValue &v, const std::string &context);

} // namespace irtherm::sweep

#endif // IRTHERM_SWEEP_JSON_HH
