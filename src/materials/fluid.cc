#include "materials/fluid.hh"

#include "base/logging.hh"

namespace irtherm
{

double
Fluid::prandtl() const
{
    return density * kinematicViscosity * specificHeat / conductivity;
}

double
Fluid::volumetricHeatCapacity() const
{
    return density * specificHeat;
}

void
Fluid::check() const
{
    if (conductivity <= 0.0 || density <= 0.0 || specificHeat <= 0.0 ||
        kinematicViscosity <= 0.0) {
        fatal("fluid '", name, "': non-positive property");
    }
}

namespace fluids
{

Fluid
irTransparentOil()
{
    // k, rho, cp typical of light mineral oil; nu chosen so that
    // 10 m/s over a 20 mm die gives h ≈ 2500 W/m^2K, i.e.
    // Rconv ≈ 1.0 K/W over a 20x20 mm die (paper's Fig. 2 setup).
    return {"ir_oil", 0.13, 850.0, 1900.0, 3.27e-5};
}

Fluid
air()
{
    return {"air", 0.026, 1.18, 1005.0, 1.57e-5};
}

Fluid
water()
{
    return {"water", 0.61, 997.0, 4180.0, 8.9e-7};
}

} // namespace fluids

} // namespace irtherm
