/**
 * @file
 * Flat-plate forced-convection correlations (Cengel, "Heat and Mass
 * Transfer"), exactly the relations the paper uses:
 *
 *   Eq. 1:  Rconv = 1 / (hL * Achip)
 *   Eq. 2:  hL    = 0.664 (k/L) Re_L^0.5 Pr^(1/3)   (laminar average)
 *   Eq. 4:  dt    = 4.91 L / (Pr^(1/3) sqrt(Re_L))  (thermal BL)
 *   Eq. 8:  h(x)  = 0.332 (k/x) Re_x^0.5 Pr^(1/3)   (laminar local)
 *
 * Plus a turbulent average correlation and a natural-convection
 * constant for the PCB-in-air case, used by AIR-SINK's (negligible)
 * secondary path.
 */

#ifndef IRTHERM_MATERIALS_CONVECTION_HH
#define IRTHERM_MATERIALS_CONVECTION_HH

#include "materials/fluid.hh"

namespace irtherm
{

/** Transition Reynolds number for a smooth flat plate. */
constexpr double laminarTransitionReynolds = 5e5;

/** Reynolds number U L / nu. */
double reynoldsNumber(const Fluid &fluid, double velocity, double length);

/**
 * Average laminar flat-plate heat transfer coefficient over a plate
 * of length @p length along the flow (paper Eq. 2). Warns when the
 * flow is beyond the laminar transition.
 */
double averageHeatTransferCoefficient(const Fluid &fluid,
                                      double velocity, double length);

/**
 * Local laminar heat transfer coefficient at distance @p x from the
 * leading edge (paper Eq. 8). h(x) diverges as x -> 0; callers
 * evaluating near the edge should integrate over a cell instead
 * (see cellAveragedCoefficient).
 */
double localHeatTransferCoefficient(const Fluid &fluid,
                                    double velocity, double x);

/**
 * Average of h(x) over the interval [x0, x1]:
 *   (1/(x1-x0)) * Integral h(x) dx = 0.664 (k) Re'^0.5 Pr^(1/3)
 *       * (sqrt(x1) - sqrt(x0)) / (x1 - x0)
 * with Re' = U / nu. Finite at the leading edge, which is what the
 * grid model stamps per cell column.
 */
double cellAveragedCoefficient(const Fluid &fluid, double velocity,
                               double x0, double x1);

/**
 * Thermal boundary-layer thickness at the trailing edge of a plate
 * of length @p length (paper Eq. 4).
 */
double thermalBoundaryLayerThickness(const Fluid &fluid,
                                     double velocity, double length);

/**
 * Local thermal boundary-layer thickness at distance @p x from the
 * leading edge: dt(x) = 4.91 x / (Pr^(1/3) sqrt(Re_x)).
 */
double localBoundaryLayerThickness(const Fluid &fluid, double velocity,
                                   double x);

/** Convection resistance 1 / (h A) (paper Eq. 1). */
double convectionResistance(double h, double area);

/**
 * Average turbulent flat-plate coefficient,
 * Nu = 0.037 Re^0.8 Pr^(1/3) — provided for the design-space
 * extension experiments; the paper's flows are laminar.
 */
double turbulentAverageCoefficient(const Fluid &fluid, double velocity,
                                   double length);

/** Typical natural-convection coefficient for a PCB in still air. */
constexpr double naturalConvectionCoefficient = 10.0; // W/(m^2 K)

} // namespace irtherm

#endif // IRTHERM_MATERIALS_CONVECTION_HH
