#include "materials/material.hh"

#include "base/logging.hh"

namespace irtherm
{

double
SolidMaterial::diffusivity() const
{
    return conductivity / volumetricHeatCapacity;
}

void
SolidMaterial::check() const
{
    if (conductivity <= 0.0)
        fatal("material '", name, "': non-positive conductivity");
    if (volumetricHeatCapacity <= 0.0)
        fatal("material '", name, "': non-positive heat capacity");
}

namespace materials
{

SolidMaterial
silicon()
{
    return {"silicon", 100.0, 1.75e6};
}

SolidMaterial
copper()
{
    return {"copper", 400.0, 3.55e6};
}

SolidMaterial
thermalInterface()
{
    // HotSpot default TIM: k = 4 W/mK (a good thermal paste).
    return {"tim", 4.0, 4.0e6};
}

SolidMaterial
interconnectStack()
{
    // ~10 metal layers in dielectric: strongly diluted copper.
    return {"interconnect", 12.0, 2.5e6};
}

SolidMaterial
c4Underfill()
{
    // Solder bump array (few % area) in epoxy underfill.
    return {"c4_underfill", 1.5, 2.2e6};
}

SolidMaterial
packageSubstrate()
{
    // Organic laminate with embedded copper planes; the planes raise
    // the effective in-plane conductivity but through-plane dominates
    // the vertical secondary path, so a modest effective value is used.
    return {"substrate", 15.0, 2.0e6};
}

SolidMaterial
solderBalls()
{
    // BGA ball array with air gaps between balls.
    return {"solder_balls", 5.0, 1.6e6};
}

SolidMaterial
printedCircuitBoard()
{
    // FR4 with copper power/ground planes: effective vertical k is
    // low, but the planes matter laterally; a compact model uses one
    // effective isotropic value.
    return {"pcb", 3.0, 1.9e6};
}

} // namespace materials

} // namespace irtherm
