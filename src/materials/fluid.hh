/**
 * @file
 * Fluid properties for convective cooling.
 *
 * The IR-transparent mineral oil is tuned (see DESIGN.md §5) so that
 * a 10 m/s laminar flow over a 20x20 mm die yields the paper's
 * validation operating point, Rconv ≈ 1.0 K/W, with a thermal
 * boundary layer on the order of 100 um.
 */

#ifndef IRTHERM_MATERIALS_FLUID_HH
#define IRTHERM_MATERIALS_FLUID_HH

#include <string>

namespace irtherm
{

/** Newtonian fluid with constant properties. */
struct Fluid
{
    std::string name;
    double conductivity = 0.0;        ///< W/(m K)
    double density = 0.0;             ///< kg/m^3
    double specificHeat = 0.0;        ///< J/(kg K)
    double kinematicViscosity = 0.0;  ///< m^2/s

    /** Prandtl number nu / alpha = rho nu cp / k. */
    double prandtl() const;

    /** Volumetric heat capacity rho * cp (J/(m^3 K)). */
    double volumetricHeatCapacity() const;

    /** Validate positivity; fatal() on nonsense values. */
    void check() const;
};

namespace fluids
{

/**
 * IR-transparent mineral oil used for thermography (paper's
 * OIL-SILICON coolant; cf. Mesa-Martinez et al.).
 */
Fluid irTransparentOil();

/** Air at ~300 K. */
Fluid air();

/** Water at ~300 K (for completeness / future work). */
Fluid water();

} // namespace fluids

} // namespace irtherm

#endif // IRTHERM_MATERIALS_FLUID_HH
