#include "materials/convection.hh"

#include <cmath>

#include "base/logging.hh"

namespace irtherm
{

double
reynoldsNumber(const Fluid &fluid, double velocity, double length)
{
    if (velocity <= 0.0 || length <= 0.0)
        fatal("reynoldsNumber: non-positive velocity or length");
    return velocity * length / fluid.kinematicViscosity;
}

double
averageHeatTransferCoefficient(const Fluid &fluid, double velocity,
                               double length)
{
    const double re = reynoldsNumber(fluid, velocity, length);
    if (re > laminarTransitionReynolds) {
        warn("averageHeatTransferCoefficient: Re=", re,
             " beyond laminar transition; laminar correlation applied");
    }
    const double pr = fluid.prandtl();
    return 0.664 * fluid.conductivity / length * std::sqrt(re) *
           std::cbrt(pr);
}

double
localHeatTransferCoefficient(const Fluid &fluid, double velocity,
                             double x)
{
    const double re = reynoldsNumber(fluid, velocity, x);
    const double pr = fluid.prandtl();
    return 0.332 * fluid.conductivity / x * std::sqrt(re) *
           std::cbrt(pr);
}

double
cellAveragedCoefficient(const Fluid &fluid, double velocity, double x0,
                        double x1)
{
    if (x0 < 0.0 || x1 <= x0)
        fatal("cellAveragedCoefficient: bad interval [", x0, ",", x1, "]");
    // Integral of 0.332 k sqrt(U/nu) Pr^(1/3) x^(-1/2) dx
    //   = 0.664 k sqrt(U/nu) Pr^(1/3) (sqrt(x1) - sqrt(x0)).
    const double re_per_len = velocity / fluid.kinematicViscosity;
    const double pr = fluid.prandtl();
    const double integral = 0.664 * fluid.conductivity *
                            std::sqrt(re_per_len) * std::cbrt(pr) *
                            (std::sqrt(x1) - std::sqrt(x0));
    return integral / (x1 - x0);
}

double
thermalBoundaryLayerThickness(const Fluid &fluid, double velocity,
                              double length)
{
    const double re = reynoldsNumber(fluid, velocity, length);
    const double pr = fluid.prandtl();
    return 4.91 * length / (std::cbrt(pr) * std::sqrt(re));
}

double
localBoundaryLayerThickness(const Fluid &fluid, double velocity,
                            double x)
{
    if (x <= 0.0)
        fatal("localBoundaryLayerThickness: non-positive x");
    return thermalBoundaryLayerThickness(fluid, velocity, x);
}

double
convectionResistance(double h, double area)
{
    if (h <= 0.0 || area <= 0.0)
        fatal("convectionResistance: non-positive h or area");
    return 1.0 / (h * area);
}

double
turbulentAverageCoefficient(const Fluid &fluid, double velocity,
                            double length)
{
    const double re = reynoldsNumber(fluid, velocity, length);
    const double pr = fluid.prandtl();
    return 0.037 * fluid.conductivity / length * std::pow(re, 0.8) *
           std::cbrt(pr);
}

} // namespace irtherm
