/**
 * @file
 * Solid material properties for the package layer stack.
 *
 * Values follow HotSpot's defaults where HotSpot defines them
 * (silicon, copper, TIM) and standard packaging references for the
 * secondary-path layers (underfill/C4, organic substrate, solder,
 * FR4 PCB, effective interconnect stack).
 */

#ifndef IRTHERM_MATERIALS_MATERIAL_HH
#define IRTHERM_MATERIALS_MATERIAL_HH

#include <string>

namespace irtherm
{

/** Isotropic solid with the two properties an RC model needs. */
struct SolidMaterial
{
    std::string name;
    double conductivity = 0.0;            ///< W/(m K)
    double volumetricHeatCapacity = 0.0;  ///< J/(m^3 K)

    /** Thermal diffusivity k / c_v (m^2/s). */
    double diffusivity() const;

    /** Validate positivity; fatal() on nonsense values. */
    void check() const;
};

namespace materials
{

/** Bulk silicon, HotSpot default (k = 100 W/mK, c_v = 1.75e6). */
SolidMaterial silicon();

/** Copper for spreader and heatsink (k = 400, c_v = 3.55e6). */
SolidMaterial copper();

/** Thermal interface material between die and spreader. */
SolidMaterial thermalInterface();

/**
 * Effective on-chip interconnect stack (metal + ILD), the first
 * layer of the secondary heat transfer path.
 */
SolidMaterial interconnectStack();

/** C4 bump array with underfill, treated as an effective medium. */
SolidMaterial c4Underfill();

/** Organic package substrate (build-up laminate with copper planes). */
SolidMaterial packageSubstrate();

/** Solder ball array as an effective medium. */
SolidMaterial solderBalls();

/** FR4 printed-circuit board with copper planes (effective). */
SolidMaterial printedCircuitBoard();

} // namespace materials

} // namespace irtherm

#endif // IRTHERM_MATERIALS_MATERIAL_HH
