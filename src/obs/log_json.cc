#include "obs/log_json.hh"

#include <cstdio>
#include <mutex>
#include <string>

#include "base/errors.hh"
#include "base/logging.hh"
#include "obs/export.hh"
#include "obs/span.hh"
#include "obs/trace_clock.hh"
#include "obs/trace_context.hh"

namespace irtherm::obs
{

namespace
{

/** Shortest double form reused from the exporters via jsonEscape's
 *  sibling; a timestamp needs millisecond-ish precision only. */
std::string
formatUnixSeconds(double s)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", s);
    return buf;
}

} // namespace

std::string
jsonLogLine(const std::string &level, const std::string &identity,
            const std::string &message)
{
    const double now =
        wallClockStartUnixSeconds() + monotonicSeconds();
    const TraceContext ctx = processTraceContext();
    std::string out = "{\"ts_unix_s\":";
    out += formatUnixSeconds(now);
    out += ",\"level\":\"" + jsonEscape(level) + "\"";
    out += ",\"who\":\"" + jsonEscape(identity) + "\"";
    out += ",\"trace\":\"" + jsonEscape(ctx.traceId) + "\"";
    out += ",\"span\":" +
           std::to_string(SpanRecorder::currentSpanId());
    out += ",\"msg\":\"" + jsonEscape(message) + "\"}";
    return out;
}

void
installJsonLogSink(const std::string &path,
                   const std::string &identity)
{
    FILE *stream = nullptr;
    if (path == "-") {
        stream = stderr;
    } else {
        stream = std::fopen(path.c_str(), "a");
        if (stream == nullptr)
            ioError("cannot open log file '", path, "'");
    }
    // One mutex per installed sink: lines from concurrent worker
    // threads must not interleave mid-object. Deliberately leaked
    // (with the stream) so destructor-time log lines stay valid.
    auto *mu = new std::mutex;
    setLogSink([stream, mu, identity](LogLevel level,
                                      const std::string &msg) {
        const std::string line =
            jsonLogLine(logLevelName(level), identity, msg);
        std::lock_guard<std::mutex> lock(*mu);
        std::fwrite(line.data(), 1, line.size(), stream);
        std::fputc('\n', stream);
        std::fflush(stream);
    });
}

} // namespace irtherm::obs
