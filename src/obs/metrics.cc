#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace irtherm::obs
{

namespace
{

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Timer:
        return "timer";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

void
checkName(const std::string &name)
{
    if (name.empty())
        fatal("MetricsRegistry: empty metric name");
    for (char c : name) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '"')
            fatal("MetricsRegistry: invalid character in metric name '",
                  name, "'");
    }
}

} // namespace

Timer::Timer() : dist(std::make_unique<Histogram>()) {}

Timer::~Timer() = default;

void
Timer::addNanos(std::uint64_t ns)
{
    if constexpr (kMetricsEnabled) {
        total.fetch_add(ns, std::memory_order_relaxed);
        calls.fetch_add(1, std::memory_order_relaxed);
        dist->observe(1e-9 * static_cast<double>(ns));
    } else {
        (void)ns;
    }
}

void
Timer::reset()
{
    total.store(0, std::memory_order_relaxed);
    calls.store(0, std::memory_order_relaxed);
    dist->reset();
}

std::size_t
Histogram::bucketIndex(double value)
{
    if (!(value > 0.0))
        return 0;
    const int e = std::ilogb(value);
    if (e < kMinExp)
        return 0;
    if (e >= kMaxExp)
        return kBucketCount - 1;
    return static_cast<std::size_t>(e - kMinExp) + 1;
}

double
Histogram::bucketLowerBound(std::size_t i)
{
    if (i == 0)
        return 0.0;
    return std::ldexp(1.0, kMinExp + static_cast<int>(i) - 1);
}

double
Histogram::bucketUpperBound(std::size_t i)
{
    if (i >= kBucketCount - 1)
        return std::ldexp(1.0, kMaxExp + 1);
    return std::ldexp(1.0, kMinExp + static_cast<int>(i));
}

void
Histogram::reset()
{
    n.store(0, std::memory_order_relaxed);
    total.store(0.0, std::memory_order_relaxed);
    low.store(1e300, std::memory_order_relaxed);
    high.store(-1e300, std::memory_order_relaxed);
    for (auto &b : buckets)
        b.store(0, std::memory_order_relaxed);
}

double
histogramQuantile(
    const std::array<std::uint64_t, Histogram::kBucketCount> &buckets,
    double minValue, double maxValue, double q)
{
    std::uint64_t c = 0;
    for (const std::uint64_t bc : buckets)
        c += bc;
    if (c == 0)
        return 0.0;
    if (q <= 0.0)
        return minValue;
    if (q >= 1.0)
        return maxValue;
    const double rank = q * static_cast<double>(c);
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
        const std::uint64_t bc = buckets[i];
        if (bc == 0)
            continue;
        if (static_cast<double>(below + bc) >= rank) {
            const double lo = Histogram::bucketLowerBound(i);
            const double hi = Histogram::bucketUpperBound(i);
            const double frac =
                (rank - static_cast<double>(below)) /
                static_cast<double>(bc);
            double v = lo + frac * (hi - lo);
            // The observed extremes bound the estimate; this also
            // tames the underflow bucket (lo = 0) and the open top
            // bucket.
            v = std::max(v, minValue);
            v = std::min(v, maxValue);
            return v;
        }
        below += bc;
    }
    return maxValue;
}

double
histogramQuantile(const Histogram &h, double q)
{
    if (h.count() == 0)
        return 0.0;
    std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i)
        buckets[i] = h.bucketCount(i);
    return histogramQuantile(buckets, h.min(), h.max(), q);
}

MetricsRegistry::Cell &
MetricsRegistry::cell(const std::string &name, MetricKind kind)
{
    checkName(name);
    std::lock_guard<std::mutex> lock(mu);
    auto it = cells.find(name);
    if (it == cells.end()) {
        Cell c;
        c.kind = kind;
        switch (kind) {
          case MetricKind::Counter:
            c.counter = std::make_unique<Counter>();
            break;
          case MetricKind::Gauge:
            c.gauge = std::make_unique<Gauge>();
            break;
          case MetricKind::Timer:
            c.timer = std::make_unique<Timer>();
            break;
          case MetricKind::Histogram:
            c.histogram = std::make_unique<Histogram>();
            break;
        }
        it = cells.emplace(name, std::move(c)).first;
    } else if (it->second.kind != kind) {
        fatal("MetricsRegistry: metric '", name, "' is a ",
              kindName(it->second.kind), ", requested as ",
              kindName(kind));
    }
    return it->second;
}

const MetricsRegistry::Cell &
MetricsRegistry::cellAt(const std::string &name, MetricKind kind) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = cells.find(name);
    if (it == cells.end())
        fatal("MetricsRegistry: unknown metric '", name, "'");
    if (it->second.kind != kind) {
        fatal("MetricsRegistry: metric '", name, "' is a ",
              kindName(it->second.kind), ", requested as ",
              kindName(kind));
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *cell(name, MetricKind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *cell(name, MetricKind::Gauge).gauge;
}

Timer &
MetricsRegistry::timer(const std::string &name)
{
    return *cell(name, MetricKind::Timer).timer;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *cell(name, MetricKind::Histogram).histogram;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    return cells.find(name) != cells.end();
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cells.size();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[name, c] : cells) {
        switch (c.kind) {
          case MetricKind::Counter:
            c.counter->reset();
            break;
          case MetricKind::Gauge:
            c.gauge->reset();
            break;
          case MetricKind::Timer:
            c.timer->reset();
            break;
          case MetricKind::Histogram:
            c.histogram->reset();
            break;
        }
    }
}

std::vector<std::pair<std::string, MetricKind>>
MetricsRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::pair<std::string, MetricKind>> out;
    out.reserve(cells.size());
    for (const auto &[name, c] : cells)
        out.emplace_back(name, c.kind);
    return out;
}

const Counter &
MetricsRegistry::counterAt(const std::string &name) const
{
    return *cellAt(name, MetricKind::Counter).counter;
}

const Gauge &
MetricsRegistry::gaugeAt(const std::string &name) const
{
    return *cellAt(name, MetricKind::Gauge).gauge;
}

const Timer &
MetricsRegistry::timerAt(const std::string &name) const
{
    return *cellAt(name, MetricKind::Timer).timer;
}

const Histogram &
MetricsRegistry::histogramAt(const std::string &name) const
{
    return *cellAt(name, MetricKind::Histogram).histogram;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry reg;
    return reg;
}

} // namespace irtherm::obs
