/**
 * @file
 * Process-wide metrics registry: counters, gauges, timers, and
 * log-scale histograms with stable, cheap-to-update handles.
 *
 * Hot paths (integrator sub-steps, CG solves, DTM polls) obtain a
 * reference to their instrument once — typically in a constructor or
 * a function-local static — and update it with a relaxed atomic
 * operation per event. The registry itself is only locked when a
 * metric is first registered or when an exporter walks it.
 *
 * Naming convention: `subsystem.object.metric`, e.g.
 * `numeric.rk4.steps` or `dtm.controller.engagements`. Units are
 * suffixed where ambiguous (`_s`, `_k`).
 *
 * Compile-time gating: when built with IRTHERM_METRICS_ENABLED=0
 * (CMake option IRTHERM_ENABLE_METRICS=OFF) every update method
 * compiles to an empty inline body, so perf-sensitive builds pay
 * nothing. Registration and export still work — exporters then
 * report zeros rather than disappearing, keeping output schemas
 * stable across builds.
 */

#ifndef IRTHERM_OBS_METRICS_HH
#define IRTHERM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef IRTHERM_METRICS_ENABLED
#define IRTHERM_METRICS_ENABLED 1
#endif

namespace irtherm::obs
{

/** True when the instrumentation is compiled in. */
constexpr bool kMetricsEnabled = IRTHERM_METRICS_ENABLED != 0;

namespace detail
{

/** Lock-free add for atomic<double> (portable pre-C++20-library). */
inline void
atomicAdd(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
}

inline void
atomicMin(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

inline void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
}

} // namespace detail

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        if constexpr (kMetricsEnabled)
            v.fetch_add(n, std::memory_order_relaxed);
        else
            (void)n;
    }

    std::uint64_t value() const { return v.load(std::memory_order_relaxed); }

    void reset() { v.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double value)
    {
        if constexpr (kMetricsEnabled)
            v.store(value, std::memory_order_relaxed);
        else
            (void)value;
    }

    void
    add(double delta)
    {
        if constexpr (kMetricsEnabled)
            detail::atomicAdd(v, delta);
        else
            (void)delta;
    }

    double value() const { return v.load(std::memory_order_relaxed); }

    void reset() { v.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v{0.0};
};

class Histogram;

/**
 * Accumulated wall time plus invocation count, with a per-call
 * duration histogram behind it so exporters can derive latency
 * percentiles (p50/p95/p99), not just the mean.
 */
class Timer
{
  public:
    Timer();
    ~Timer();

    Timer(const Timer &) = delete;
    Timer &operator=(const Timer &) = delete;

    void addNanos(std::uint64_t ns);

    std::uint64_t count() const
    {
        return calls.load(std::memory_order_relaxed);
    }

    double totalSeconds() const
    {
        return 1e-9 *
               static_cast<double>(total.load(std::memory_order_relaxed));
    }

    double
    meanSeconds() const
    {
        const std::uint64_t c = count();
        return c == 0 ? 0.0 : totalSeconds() / static_cast<double>(c);
    }

    /** Per-call durations in seconds (for percentile estimates). */
    const Histogram &distribution() const { return *dist; }

    void reset();

  private:
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> calls{0};
    std::unique_ptr<Histogram> dist; ///< per-call seconds
};

/** RAII wall-clock span feeding a Timer. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &timer) : t(timer)
    {
        if constexpr (kMetricsEnabled)
            start = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if constexpr (kMetricsEnabled) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            t.addNanos(static_cast<std::uint64_t>(ns));
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Timer &t;
    std::chrono::steady_clock::time_point start;
};

/**
 * Log2-bucketed histogram for positive quantities spanning many
 * decades (step sizes in seconds, iteration counts, residuals).
 *
 * Bucket 0 collects non-positive and sub-2^kMinExp values; bucket i
 * (i >= 1) covers [2^(kMinExp+i-1), 2^(kMinExp+i)). Values above
 * 2^kMaxExp land in the top bucket. Besides the buckets the
 * histogram tracks count / sum / min / max so exporters can report
 * the mean and extremes exactly.
 */
class Histogram
{
  public:
    static constexpr int kMinExp = -40; ///< smallest resolved 2^e
    static constexpr int kMaxExp = 24;  ///< largest resolved 2^e
    static constexpr std::size_t kBucketCount =
        static_cast<std::size_t>(kMaxExp - kMinExp) + 1;

    void
    observe(double value)
    {
        if constexpr (kMetricsEnabled) {
            n.fetch_add(1, std::memory_order_relaxed);
            detail::atomicAdd(total, value);
            detail::atomicMin(low, value);
            detail::atomicMax(high, value);
            buckets[bucketIndex(value)].fetch_add(
                1, std::memory_order_relaxed);
        } else {
            (void)value;
        }
    }

    /** Bucket for @p value (exposed for tests). */
    static std::size_t bucketIndex(double value);

    /** Inclusive lower bound of bucket @p i (0 for the underflow). */
    static double bucketLowerBound(std::size_t i);

    /** Exclusive upper bound of bucket @p i. */
    static double bucketUpperBound(std::size_t i);

    std::uint64_t count() const { return n.load(std::memory_order_relaxed); }
    double sum() const { return total.load(std::memory_order_relaxed); }

    /** Smallest observed value; meaningless when count() == 0. */
    double min() const { return low.load(std::memory_order_relaxed); }

    /** Largest observed value; meaningless when count() == 0. */
    double max() const { return high.load(std::memory_order_relaxed); }

    double
    mean() const
    {
        const std::uint64_t c = count();
        return c == 0 ? 0.0 : sum() / static_cast<double>(c);
    }

    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets.at(i).load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::atomic<std::uint64_t> n{0};
    std::atomic<double> total{0.0};
    std::atomic<double> low{1e300};
    std::atomic<double> high{-1e300};
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
};

/**
 * Quantile estimate for @p q in [0, 1]: walks the cumulative bucket
 * counts to the bucket containing the rank, interpolates linearly
 * within that bucket's bounds, and clamps to the observed
 * [min(), max()] (which also tames the open-ended underflow and
 * overflow buckets). Returns 0 when the histogram is empty.
 */
double histogramQuantile(const Histogram &h, double q);

/**
 * Same estimate over a raw bucket array laid out exactly like
 * Histogram's (kBucketCount log2 buckets, see bucketIndex). Lets
 * code that must aggregate regardless of IRTHERM_METRICS_ENABLED —
 * e.g. the sweep analytics layer, whose counts are product data, not
 * instrumentation — reuse the bucket geometry and interpolation.
 * @p minValue / @p maxValue are the observed extremes used to clamp
 * the open-ended buckets; pass the tracked min/max.
 */
double histogramQuantile(
    const std::array<std::uint64_t, Histogram::kBucketCount> &buckets,
    double minValue, double maxValue, double q);

/** Discriminator for registry entries. */
enum class MetricKind
{
    Counter,
    Gauge,
    Timer,
    Histogram,
};

/**
 * Thread-safe name -> instrument map.
 *
 * Registration returns a reference with a stable address for the
 * lifetime of the registry; re-registering the same name returns the
 * same instrument (so every Rk4Integrator instance aggregates into
 * one process-wide counter). Registering a name under a different
 * kind is a programming error and fatal()s.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Timer &timer(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** True if @p name is registered (any kind). */
    bool has(const std::string &name) const;

    /** Number of registered metrics. */
    std::size_t size() const;

    /**
     * Zero every value while keeping all registrations (handles held
     * by live objects stay valid). Used by tests and by the CLI
     * between phases when isolation is wanted.
     */
    void reset();

    /** Name/kind pairs, sorted by name (export walk). */
    std::vector<std::pair<std::string, MetricKind>> names() const;

    /** @pre the name is registered with the matching kind. */
    const Counter &counterAt(const std::string &name) const;
    const Gauge &gaugeAt(const std::string &name) const;
    const Timer &timerAt(const std::string &name) const;
    const Histogram &histogramAt(const std::string &name) const;

    /** The process-wide registry used by all irtherm instrumentation. */
    static MetricsRegistry &global();

  private:
    struct Cell
    {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Timer> timer;
        std::unique_ptr<Histogram> histogram;
    };

    Cell &cell(const std::string &name, MetricKind kind);
    const Cell &cellAt(const std::string &name, MetricKind kind) const;

    mutable std::mutex mu;
    std::map<std::string, Cell> cells;
};

} // namespace irtherm::obs

#endif // IRTHERM_OBS_METRICS_HH
