/**
 * @file
 * Process-wide telemetry clock: one monotonic epoch shared by spans
 * (obs/span.hh) and events (obs/event_trace.hh), so both can be laid
 * on the same Perfetto timeline, plus the wall-clock instant that
 * epoch corresponds to (exported as a top-level field so tools can
 * map monotonic offsets back to civil time).
 *
 * The epoch is captured once, on first use, from both
 * std::chrono::steady_clock and std::chrono::system_clock at the
 * same instant. It never resets — clearing a trace or span buffer
 * does not move the timeline origin, which is exactly what lets a
 * cleared-and-refilled trace still overlay recorded spans.
 */

#ifndef IRTHERM_OBS_TRACE_CLOCK_HH
#define IRTHERM_OBS_TRACE_CLOCK_HH

#include <chrono>

namespace irtherm::obs
{

/** The shared monotonic epoch (captured once per process). */
std::chrono::steady_clock::time_point traceEpoch();

/** Seconds from the shared epoch to @p t. */
double monotonicSeconds(std::chrono::steady_clock::time_point t);

/** Seconds from the shared epoch to now. */
double monotonicSeconds();

/** Unix wall-clock seconds at the instant the epoch was captured. */
double wallClockStartUnixSeconds();

} // namespace irtherm::obs

#endif // IRTHERM_OBS_TRACE_CLOCK_HH
