#include "obs/span.hh"

#include "base/logging.hh"

namespace irtherm::obs
{

/**
 * Per-thread live-span state. Owned by a thread_local (so a thread
 * unregisters itself on exit) and listed in the recorder's thread
 * table so livePaths() can walk every stack.
 *
 * Lock order: recorder.threadsMu before slot.mu, everywhere both
 * are held.
 */
struct SpanRecorder::ThreadSlot
{
    struct Frame
    {
        std::uint64_t id = 0;
        std::string name;
        double startSeconds = 0.0;
    };

    SpanRecorder *owner = nullptr;
    std::uint32_t index = 0;
    mutable std::mutex mu; ///< protects label + frames
    std::string label;
    std::vector<Frame> frames;

    ~ThreadSlot()
    {
        if (owner == nullptr)
            return;
        std::lock_guard<std::mutex> lock(owner->threadsMu);
        auto &list = owner->threads;
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i] == this) {
                list.erase(list.begin() +
                           static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
    }
};

SpanRecorder::SpanRecorder(std::size_t capacity_) : cap(capacity_)
{
    if (cap == 0)
        fatal("SpanRecorder: zero capacity");
    ring.resize(cap);
}

void
SpanRecorder::setEnabled(bool enabled_)
{
    on.store(enabled_, std::memory_order_relaxed);
}

void
SpanRecorder::setCapacity(std::size_t capacity_)
{
    if (capacity_ == 0)
        fatal("SpanRecorder: zero capacity");
    std::lock_guard<std::mutex> lock(mu);
    cap = capacity_;
    ring.assign(cap, SpanRecord{});
    head = 0;
    count = 0;
}

std::size_t
SpanRecorder::capacity() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cap;
}

void
SpanRecorder::record(SpanRecord rec)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu);
    SpanRecord &slot = ring[head];
    if (count == cap)
        ++droppedCount; // overwriting the oldest span
    else
        ++count;
    slot = std::move(rec);
    head = (head + 1) % cap;
    ++total;
}

std::size_t
SpanRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return count;
}

std::uint64_t
SpanRecorder::recorded() const
{
    std::lock_guard<std::mutex> lock(mu);
    return total;
}

std::uint64_t
SpanRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mu);
    return droppedCount;
}

std::vector<SpanRecord>
SpanRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<SpanRecord> out;
    out.reserve(count);
    const std::size_t first = (head + cap - count) % cap;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(first + i) % cap]);
    return out;
}

void
SpanRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    for (SpanRecord &r : ring)
        r = SpanRecord{};
    head = 0;
    count = 0;
    total = 0;
    droppedCount = 0;
}

std::vector<SpanRecorder::LivePath>
SpanRecorder::livePaths() const
{
    std::lock_guard<std::mutex> lock(threadsMu);
    std::vector<LivePath> out;
    out.reserve(threads.size());
    for (const ThreadSlot *slot : threads) {
        std::lock_guard<std::mutex> slotLock(slot->mu);
        LivePath p;
        p.threadIndex = slot->index;
        p.label = slot->label;
        for (const ThreadSlot::Frame &f : slot->frames) {
            if (!p.path.empty())
                p.path += '/';
            p.path += f.name;
        }
        if (!slot->frames.empty())
            p.openSeconds = slot->frames.back().startSeconds;
        out.push_back(std::move(p));
    }
    return out;
}

std::vector<std::pair<std::uint32_t, std::string>>
SpanRecorder::threadLabels() const
{
    std::lock_guard<std::mutex> lock(threadsMu);
    return labels;
}

void
SpanRecorder::setThreadLabel(const std::string &label)
{
    ThreadSlot &slot = threadSlot();
    SpanRecorder &g = global();
    std::lock_guard<std::mutex> lock(g.threadsMu);
    {
        std::lock_guard<std::mutex> slotLock(slot.mu);
        slot.label = label;
    }
    // labels[] is appended in registration order, so the slot index
    // doubles as its position.
    if (slot.index < g.labels.size())
        g.labels[slot.index].second = label;
}

std::uint64_t
SpanRecorder::currentSpanId()
{
    if constexpr (!kMetricsEnabled)
        return 0;
    ThreadSlot &slot = threadSlot();
    std::lock_guard<std::mutex> lock(slot.mu);
    return slot.frames.empty() ? 0 : slot.frames.back().id;
}

SpanRecorder::ThreadSlot &
SpanRecorder::threadSlot()
{
    thread_local ThreadSlot slot;
    if (slot.owner == nullptr) {
        SpanRecorder &g = global();
        std::lock_guard<std::mutex> lock(g.threadsMu);
        slot.owner = &g;
        slot.index = g.nextThreadIndex++;
        g.threads.push_back(&slot);
        g.labels.emplace_back(slot.index, std::string());
    }
    return slot;
}

SpanRecorder &
SpanRecorder::global()
{
    static SpanRecorder recorder;
    return recorder;
}

#if IRTHERM_METRICS_ENABLED

ScopedSpan::ScopedSpan(std::string name)
{
    SpanRecorder &g = SpanRecorder::global();
    if (!g.enabled())
        return;
    active = true;
    rec.name = std::move(name);
    static std::atomic<std::uint64_t> nextId{1};
    rec.id = nextId.fetch_add(1, std::memory_order_relaxed);
    SpanRecorder::ThreadSlot &slot = SpanRecorder::threadSlot();
    rec.threadIndex = slot.index;
    rec.startSeconds = monotonicSeconds();
    std::lock_guard<std::mutex> lock(slot.mu);
    rec.parentId = slot.frames.empty() ? 0 : slot.frames.back().id;
    rec.depth = static_cast<std::uint32_t>(slot.frames.size());
    slot.frames.push_back({rec.id, rec.name, rec.startSeconds});
}

ScopedSpan::~ScopedSpan()
{
    if (!active)
        return;
    rec.durationSeconds = monotonicSeconds() - rec.startSeconds;
    SpanRecorder::ThreadSlot &slot = SpanRecorder::threadSlot();
    {
        std::lock_guard<std::mutex> lock(slot.mu);
        // Pop down to and including our frame. Anything above it
        // belongs to spans destructed out of order (exception paths);
        // dropping those frames keeps the live path honest.
        while (!slot.frames.empty() &&
               slot.frames.back().id != rec.id)
            slot.frames.pop_back();
        if (!slot.frames.empty())
            slot.frames.pop_back();
    }
    SpanRecorder::global().record(std::move(rec));
}

#endif // IRTHERM_METRICS_ENABLED

} // namespace irtherm::obs
