/**
 * @file
 * Minimal embedded HTTP/1.1 server for live telemetry endpoints and
 * the sweep-fabric control plane.
 *
 * Deliberately tiny: raw POSIX sockets, one blocking listener thread,
 * one request per connection (Connection: close), exact path match.
 * GET/HEAD routes cover /metrics, /status and /healthz; POST routes
 * (with a bounded request body) carry the fabric lease protocol. The
 * dependency count stays at zero.
 *
 * Protocol posture, in order of evaluation per request:
 *  - admission control (optional token bucket): over-rate requests
 *    are shed with 429 + Retry-After *before* any parsing beyond the
 *    request line, so a flood degrades to client-side queuing, not
 *    server collapse (the FoundationDB Ratekeeper idea, scaled down);
 *  - a 16 KiB header cap (431 when the headers never end);
 *  - a configurable body cap: POSTs declaring a larger
 *    Content-Length are refused with 413 without reading the body,
 *    and a POST without a Content-Length gets 411;
 *  - method mismatch on a registered path is 405 with an `Allow`
 *    header listing what the path actually serves.
 *
 * Security posture: binds 127.0.0.1 by default. The endpoints expose
 * solver progress and accept sweep jobs — harmless on a workstation,
 * but exposing them beyond the local host is an explicit opt-in
 * (pass a different bind address).
 */

#ifndef IRTHERM_OBS_HTTP_SERVER_HH
#define IRTHERM_OBS_HTTP_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace irtherm::obs
{

/** A handler's reply. Body is sent verbatim with Content-Length. */
struct HttpResponse
{
    HttpResponse() = default;
    HttpResponse(int status_, std::string contentType_,
                 std::string body_)
        : status(status_), contentType(std::move(contentType_)),
          body(std::move(body_))
    {}

    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
    /** Extra response headers (e.g. {"Retry-After", "2"}). */
    std::vector<std::pair<std::string, std::string>> headers;
};

/** One parsed request as a body-taking handler sees it. */
struct HttpRequest
{
    std::string method; ///< "GET", "POST", ...
    std::string path;   ///< decoded path, query string stripped
    std::string body;   ///< request body ("" for GET/HEAD)
    /** Raw request header block (CRLF-separated, no trailing blank
     *  line); query with header(). */
    std::string headerBlock;

    /** Case-insensitive request-header lookup; "" when absent. */
    std::string header(const std::string &name) const;
};

/**
 * One-listener-thread HTTP server.
 *
 * Register handlers, then start(). Handlers run on the listener
 * thread, so they must be quick and must not call back into stop().
 * port 0 requests an ephemeral port; port() reports the actual one.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse()>;
    using BodyHandler = std::function<HttpResponse(const HttpRequest &)>;

    HttpServer() = default;
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Map an exact request path ("/status") to a GET/HEAD handler.
     *  Must be called before start(). */
    void route(const std::string &path, Handler handler);

    /**
     * Map @p method (e.g. "POST") on an exact path to a body-taking
     * handler. A "GET" registration also answers HEAD (body
     * stripped). Must be called before start().
     */
    void route(const std::string &method, const std::string &path,
               BodyHandler handler);

    /**
     * Cap on accepted request bodies; a POST declaring more is
     * refused with 413. Must be set before start(). Default 256 KiB.
     */
    void setMaxBodyBytes(std::size_t bytes) { maxBodyBytes = bytes; }

    /**
     * Arm admission control: a token bucket holding @p burst tokens,
     * refilled at @p ratePerSecond. Each request spends one token;
     * an empty bucket sheds the request with 429 + Retry-After
     * (seconds until a token is available, rounded up). 0 rate
     * disarms (the default). Must be set before start().
     */
    void limitRequestRate(double ratePerSecond, double burst);

    /**
     * Bind, listen, and spawn the listener thread. Throws IoError on
     * socket failures (port in use, bad address).
     */
    void start(int port, const std::string &bindAddress = "127.0.0.1");

    /** True between a successful start() and stop(). */
    bool running() const { return live.load(std::memory_order_acquire); }

    /** The bound port (resolves port-0 requests); 0 if not running. */
    int port() const { return boundPort; }

    /** Requests answered so far (including 404s and shed 429s). */
    std::uint64_t requestCount() const
    {
        return served.load(std::memory_order_relaxed);
    }

    /** Requests shed with 429 by admission control so far. */
    std::uint64_t shedCount() const
    {
        return shed.load(std::memory_order_relaxed);
    }

    /** Close the listening socket and join the thread. Idempotent. */
    void stop();

  private:
    void listenLoop();
    void serveConnection(int fd);
    /** Take one admission token, or compute the Retry-After delay. */
    bool admitOne(double &retryAfterSeconds);

    /** method -> handler for one path ("GET" also serves HEAD). */
    using MethodMap = std::map<std::string, BodyHandler>;
    std::map<std::string, MethodMap> routes;
    std::thread listener;
    std::atomic<bool> live{false};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> shed{0};
    // Written by stop() while listenLoop() blocks in accept() on it;
    // atomic so the handoff is race-free under TSan. The fd itself
    // stays valid until stop() joins the listener.
    std::atomic<int> listenFd{-1};
    int boundPort = 0;
    std::size_t maxBodyBytes = 256 * 1024;

    // Token bucket (listener-thread only, but guarded anyway so
    // limitRequestRate() racing a request stays defined).
    std::mutex gateMu;
    double gateRate = 0.0;  ///< tokens per second; 0 = disarmed
    double gateBurst = 0.0; ///< bucket capacity
    double gateTokens = 0.0;
    std::chrono::steady_clock::time_point gateStamp{};
};

} // namespace irtherm::obs

#endif // IRTHERM_OBS_HTTP_SERVER_HH
