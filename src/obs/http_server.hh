/**
 * @file
 * Minimal embedded HTTP/1.1 server for live telemetry endpoints.
 *
 * Deliberately tiny: raw POSIX sockets, one blocking listener thread,
 * one request per connection (Connection: close), GET only, exact
 * path match. That is all /metrics, /status and /healthz need, and it
 * keeps the dependency count at zero.
 *
 * Security posture: binds 127.0.0.1 by default. The endpoints expose
 * solver progress and resource numbers — harmless on a workstation,
 * but exposing them beyond the local host is an explicit opt-in
 * (pass a different bind address).
 */

#ifndef IRTHERM_OBS_HTTP_SERVER_HH
#define IRTHERM_OBS_HTTP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace irtherm::obs
{

/** A handler's reply. Body is sent verbatim with Content-Length. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/**
 * One-listener-thread HTTP server.
 *
 * Register handlers, then start(). Handlers run on the listener
 * thread, so they must be quick and must not call back into stop().
 * port 0 requests an ephemeral port; port() reports the actual one.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse()>;

    HttpServer() = default;
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Map an exact request path ("/status") to a handler. Must be
     *  called before start(). */
    void route(const std::string &path, Handler handler);

    /**
     * Bind, listen, and spawn the listener thread. Throws IoError on
     * socket failures (port in use, bad address).
     */
    void start(int port, const std::string &bindAddress = "127.0.0.1");

    /** True between a successful start() and stop(). */
    bool running() const { return live.load(std::memory_order_acquire); }

    /** The bound port (resolves port-0 requests); 0 if not running. */
    int port() const { return boundPort; }

    /** Requests answered so far (including 404s). */
    std::uint64_t requestCount() const
    {
        return served.load(std::memory_order_relaxed);
    }

    /** Close the listening socket and join the thread. Idempotent. */
    void stop();

  private:
    void listenLoop();
    void serveConnection(int fd);

    std::map<std::string, Handler> routes;
    std::thread listener;
    std::atomic<bool> live{false};
    std::atomic<std::uint64_t> served{0};
    int listenFd = -1;
    int boundPort = 0;
};

} // namespace irtherm::obs

#endif // IRTHERM_OBS_HTTP_SERVER_HH
