/**
 * @file
 * Structured JSON log sink for fleet runs (`--log-json`).
 *
 * Replaces the default "level: message" stderr sink with one JSON
 * object per line:
 *
 *   {"ts_unix_s":1754650000.123,"level":"info","who":"worker-7",
 *    "trace":"9f2c41d0a6e83b17","span":42,"msg":"lease granted"}
 *
 * so fleet logs from N processes concatenate into one greppable
 * stream keyed by the propagated correlation id: "trace" is the
 * process-current trace id (obs/trace_context) and "span" the
 * calling thread's innermost open span id (0 when none — and always
 * 0 under IRTHERM_ENABLE_METRICS=OFF, where spans compile out; the
 * sink itself still works, it just carries no correlation ids).
 *
 * The sink appends to a file path, or to stderr for the path "-".
 * Installation is process-global and meant to happen once during
 * CLI startup; the stream handle is intentionally leaked so log
 * lines emitted from atexit-ordered destructors stay safe.
 */

#ifndef IRTHERM_OBS_LOG_JSON_HH
#define IRTHERM_OBS_LOG_JSON_HH

#include <string>

namespace irtherm::obs
{

/**
 * Install the JSON log sink. @p path is a file to append to, or "-"
 * for stderr. @p identity names this process in every line (worker
 * name, "coordinator", ...). Throws IoError when the file cannot be
 * opened.
 */
void installJsonLogSink(const std::string &path,
                        const std::string &identity);

/** Render one log line (exposed for tests). */
std::string jsonLogLine(const std::string &level,
                        const std::string &identity,
                        const std::string &message);

} // namespace irtherm::obs

#endif // IRTHERM_OBS_LOG_JSON_HH
