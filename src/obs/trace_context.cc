#include "obs/trace_context.hh"

#include <chrono>
#include <mutex>
#include <random>

namespace irtherm::obs
{

namespace
{

bool
isHex16(const std::string &s)
{
    if (s.size() != 16)
        return false;
    for (char c : s) {
        const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!ok)
            return false;
    }
    return true;
}

std::uint64_t
parseHex16(const std::string &s)
{
    std::uint64_t v = 0;
    for (char c : s) {
        v <<= 4;
        v |= static_cast<std::uint64_t>(
            c <= '9' ? c - '0' : c - 'a' + 10);
    }
    return v;
}

std::mutex &
ctxMutex()
{
    static std::mutex mu;
    return mu;
}

TraceContext &
ctxSlot()
{
    static TraceContext ctx;
    return ctx;
}

} // namespace

bool
TraceContext::valid() const
{
    return isHex16(traceId);
}

std::string
spanIdHex(std::uint64_t v)
{
    static const char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
        v >>= 4;
    }
    return out;
}

std::uint64_t
parseSpanIdHex(const std::string &hex)
{
    return isHex16(hex) ? parseHex16(hex) : 0;
}

std::string
mintTraceId()
{
    // Random + time mix: ids need only be unique-enough to tell two
    // sweeps apart, not cryptographic.
    std::random_device rd;
    std::uint64_t v = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    v ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    if (v == 0)
        v = 1; // all-zero ids read as "unset" to humans
    return spanIdHex(v);
}

std::string
formatTraceContext(const TraceContext &ctx)
{
    if (!ctx.valid())
        return "";
    return ctx.traceId + "-" + spanIdHex(ctx.spanId);
}

TraceContext
parseTraceContext(const std::string &wire)
{
    TraceContext ctx;
    if (wire.size() != 33 || wire[16] != '-')
        return ctx;
    const std::string trace = wire.substr(0, 16);
    const std::string span = wire.substr(17);
    if (!isHex16(trace) || !isHex16(span))
        return ctx;
    ctx.traceId = trace;
    ctx.spanId = parseHex16(span);
    return ctx;
}

void
setProcessTraceContext(const TraceContext &ctx)
{
    std::lock_guard<std::mutex> lock(ctxMutex());
    ctxSlot() = ctx;
}

TraceContext
processTraceContext()
{
    std::lock_guard<std::mutex> lock(ctxMutex());
    return ctxSlot();
}

} // namespace irtherm::obs
