#include "obs/http_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/errors.hh"

namespace irtherm::obs
{

namespace
{

const char *
statusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 431:
        return "Request Header Fields Too Large";
      default:
        return "Error";
    }
}

void
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer went away; nothing useful to do
        sent += static_cast<std::size_t>(n);
    }
}

void
sendResponse(int fd, const HttpResponse &resp)
{
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      statusText(resp.status) +
                      "\r\nContent-Type: " + resp.contentType +
                      "\r\nContent-Length: " +
                      std::to_string(resp.body.size()) +
                      "\r\nConnection: close\r\n\r\n" + resp.body;
    sendAll(fd, out);
}

} // namespace

HttpServer::~HttpServer() { stop(); }

void
HttpServer::route(const std::string &path, Handler handler)
{
    if (running())
        ioError("HttpServer: route() after start()");
    routes[path] = std::move(handler);
}

void
HttpServer::start(int port, const std::string &bindAddress)
{
    if (running())
        ioError("HttpServer: already running");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        ioError("HttpServer: socket(): ", std::strerror(errno));

    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, bindAddress.c_str(), &addr.sin_addr) !=
        1) {
        ::close(fd);
        ioError("HttpServer: bad bind address '", bindAddress, "'");
    }

    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        ioError("HttpServer: bind(", bindAddress, ":", port,
                "): ", std::strerror(err));
    }
    if (::listen(fd, 16) != 0) {
        const int err = errno;
        ::close(fd);
        ioError("HttpServer: listen(): ", std::strerror(err));
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0) {
        const int err = errno;
        ::close(fd);
        ioError("HttpServer: getsockname(): ", std::strerror(err));
    }

    listenFd = fd;
    boundPort = ntohs(bound.sin_port);
    live.store(true, std::memory_order_release);
    listener = std::thread([this] { listenLoop(); });
}

void
HttpServer::stop()
{
    if (!live.exchange(false, std::memory_order_acq_rel)) {
        if (listener.joinable())
            listener.join();
        return;
    }
    // Unblock accept(): shutdown() first so the loop's accept fails,
    // then close. Linux accept() on a closed-by-another-thread fd is
    // not guaranteed to return, shutdown() is.
    ::shutdown(listenFd, SHUT_RDWR);
    ::close(listenFd);
    listenFd = -1;
    if (listener.joinable())
        listener.join();
    boundPort = 0;
}

void
HttpServer::listenLoop()
{
    while (live.load(std::memory_order_acquire)) {
        const int conn = ::accept(listenFd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            break; // listening socket shut down
        }
        // Bound how long a stalled client can hold the single
        // listener thread hostage — in BOTH directions. A client
        // that connects and never sends trips SO_RCVTIMEO; a
        // slow reader that never drains its receive window trips
        // SO_SNDTIMEO once the kernel buffers fill.
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        serveConnection(conn);
        ::close(conn);
    }
}

void
HttpServer::serveConnection(int fd)
{
    // Read until the end of the request headers. GET requests carry
    // no body, so this is the full request.
    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < 16384) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return;
        req.append(buf, static_cast<std::size_t>(n));
    }
    if (req.find("\r\n\r\n") == std::string::npos &&
        req.size() >= 16384) {
        // The cap tripped before the headers ended: an oversized (or
        // never-terminated) request. Refuse explicitly rather than
        // trying to parse a request line out of a 16 KB blob.
        sendResponse(fd, {431, "text/plain; charset=utf-8",
                          "request too large\n"});
        ++served;
        return;
    }

    const std::size_t lineEnd = req.find("\r\n");
    if (lineEnd == std::string::npos) {
        sendResponse(fd, {400, "text/plain; charset=utf-8",
                          "bad request\n"});
        ++served;
        return;
    }
    const std::string line = req.substr(0, lineEnd);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        sendResponse(fd, {400, "text/plain; charset=utf-8",
                          "bad request\n"});
        ++served;
        return;
    }
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);

    HttpResponse resp;
    if (method != "GET" && method != "HEAD") {
        resp = {405, "text/plain; charset=utf-8",
                "method not allowed\n"};
    } else {
        const auto it = routes.find(path);
        if (it == routes.end())
            resp = {404, "text/plain; charset=utf-8", "not found\n"};
        else
            resp = it->second();
    }
    if (method == "HEAD")
        resp.body.clear();
    sendResponse(fd, resp);
    ++served;
}

} // namespace irtherm::obs
