#include "obs/http_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "base/errors.hh"

namespace irtherm::obs
{

namespace
{

constexpr std::size_t kHeaderCap = 16384;

const char *
statusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 409:
        return "Conflict";
      case 410:
        return "Gone";
      case 411:
        return "Length Required";
      case 413:
        return "Payload Too Large";
      case 429:
        return "Too Many Requests";
      case 431:
        return "Request Header Fields Too Large";
      case 500:
        return "Internal Server Error";
      default:
        return "Error";
    }
}

void
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer went away; nothing useful to do
        sent += static_cast<std::size_t>(n);
    }
}

void
sendResponse(int fd, const HttpResponse &resp)
{
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      statusText(resp.status) +
                      "\r\nContent-Type: " + resp.contentType +
                      "\r\nContent-Length: " +
                      std::to_string(resp.body.size());
    for (const auto &[name, value] : resp.headers)
        out += "\r\n" + name + ": " + value;
    out += "\r\nConnection: close\r\n\r\n" + resp.body;
    sendAll(fd, out);
}

HttpResponse
plain(int status, const std::string &body)
{
    return {status, "text/plain; charset=utf-8", body};
}

/**
 * Case-insensitive header lookup over the raw header block; returns
 * the trimmed value of the first match, or "" when absent.
 */
std::string
findHeader(const std::string &headers, const std::string &name)
{
    std::size_t pos = 0;
    while (pos < headers.size()) {
        std::size_t end = headers.find("\r\n", pos);
        if (end == std::string::npos)
            end = headers.size();
        const std::string line = headers.substr(pos, end - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos && colon == name.size()) {
            bool match = true;
            for (std::size_t i = 0; i < name.size(); ++i) {
                if (std::tolower(static_cast<unsigned char>(line[i])) !=
                    std::tolower(static_cast<unsigned char>(name[i]))) {
                    match = false;
                    break;
                }
            }
            if (match) {
                std::string value = line.substr(colon + 1);
                const std::size_t first =
                    value.find_first_not_of(" \t");
                if (first == std::string::npos)
                    return "";
                const std::size_t last =
                    value.find_last_not_of(" \t");
                return value.substr(first, last - first + 1);
            }
        }
        pos = end + 2;
    }
    return "";
}

} // namespace

std::string
HttpRequest::header(const std::string &name) const
{
    return findHeader(headerBlock, name);
}

HttpServer::~HttpServer() { stop(); }

void
HttpServer::route(const std::string &path, Handler handler)
{
    route("GET", path,
          [handler = std::move(handler)](const HttpRequest &) {
              return handler();
          });
}

void
HttpServer::route(const std::string &method, const std::string &path,
                  BodyHandler handler)
{
    if (running())
        ioError("HttpServer: route() after start()");
    routes[path][method] = std::move(handler);
}

void
HttpServer::limitRequestRate(double ratePerSecond, double burst)
{
    std::lock_guard<std::mutex> lock(gateMu);
    gateRate = std::max(0.0, ratePerSecond);
    gateBurst = std::max(1.0, burst);
    gateTokens = gateBurst;
    gateStamp = std::chrono::steady_clock::now();
}

bool
HttpServer::admitOne(double &retryAfterSeconds)
{
    std::lock_guard<std::mutex> lock(gateMu);
    if (gateRate <= 0.0)
        return true;
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - gateStamp).count();
    gateStamp = now;
    gateTokens = std::min(gateBurst, gateTokens + elapsed * gateRate);
    if (gateTokens >= 1.0) {
        gateTokens -= 1.0;
        return true;
    }
    retryAfterSeconds = (1.0 - gateTokens) / gateRate;
    return false;
}

void
HttpServer::start(int port, const std::string &bindAddress)
{
    if (running())
        ioError("HttpServer: already running");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        ioError("HttpServer: socket(): ", std::strerror(errno));

    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, bindAddress.c_str(), &addr.sin_addr) !=
        1) {
        ::close(fd);
        ioError("HttpServer: bad bind address '", bindAddress, "'");
    }

    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        ioError("HttpServer: bind(", bindAddress, ":", port,
                "): ", std::strerror(err));
    }
    if (::listen(fd, 16) != 0) {
        const int err = errno;
        ::close(fd);
        ioError("HttpServer: listen(): ", std::strerror(err));
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0) {
        const int err = errno;
        ::close(fd);
        ioError("HttpServer: getsockname(): ", std::strerror(err));
    }

    listenFd = fd;
    boundPort = ntohs(bound.sin_port);
    live.store(true, std::memory_order_release);
    listener = std::thread([this] { listenLoop(); });
}

void
HttpServer::stop()
{
    if (!live.exchange(false, std::memory_order_acq_rel)) {
        if (listener.joinable())
            listener.join();
        return;
    }
    // Unblock accept(): shutdown() first so the loop's accept fails,
    // then close. Linux accept() on a closed-by-another-thread fd is
    // not guaranteed to return, shutdown() is.
    const int fd = listenFd.exchange(-1);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    if (listener.joinable())
        listener.join();
    boundPort = 0;
}

void
HttpServer::listenLoop()
{
    while (live.load(std::memory_order_acquire)) {
        const int conn = ::accept(listenFd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            break; // listening socket shut down
        }
        // Bound how long a stalled client can hold the single
        // listener thread hostage — in BOTH directions. A client
        // that connects and never sends trips SO_RCVTIMEO; a
        // slow reader that never drains its receive window trips
        // SO_SNDTIMEO once the kernel buffers fill.
        timeval tv{};
        tv.tv_sec = 2;
        ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        serveConnection(conn);
        ::close(conn);
    }
}

void
HttpServer::serveConnection(int fd)
{
    // Read until the end of the request headers; whatever follows in
    // the same packets is the start of the body.
    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < kHeaderCap) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return;
        req.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t headerEnd = req.find("\r\n\r\n");
    if (headerEnd == std::string::npos) {
        // The cap tripped before the headers ended: an oversized (or
        // never-terminated) header block. Refuse explicitly rather
        // than trying to parse a request line out of a 16 KB blob.
        sendResponse(fd, plain(431, "request header too large\n"));
        ++served;
        return;
    }

    const std::size_t lineEnd = req.find("\r\n");
    const std::string line = req.substr(0, lineEnd);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        sendResponse(fd, plain(400, "bad request\n"));
        ++served;
        return;
    }
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);

    // Admission control sits before body reads and route dispatch: a
    // flood is answered from the request line alone.
    double retryAfter = 0.0;
    if (!admitOne(retryAfter)) {
        HttpResponse resp = plain(429, "over capacity, retry later\n");
        resp.headers.emplace_back(
            "Retry-After",
            std::to_string(static_cast<long>(std::ceil(
                std::max(1.0, retryAfter)))));
        sendResponse(fd, resp);
        ++shed;
        ++served;
        return;
    }

    // Resolve the route before demanding body framing: a POST to a
    // GET-only path is 405 whether or not it declared a length.
    const auto pathIt = routes.find(path);
    if (pathIt == routes.end()) {
        HttpResponse resp = plain(404, "not found\n");
        if (method == "HEAD")
            resp.body.clear();
        sendResponse(fd, resp);
        ++served;
        return;
    }
    const std::string lookup = method == "HEAD" ? "GET" : method;
    const auto methodIt = pathIt->second.find(lookup);
    if (methodIt == pathIt->second.end()) {
        // Registered path, wrong verb: say what WOULD work.
        std::string allow;
        for (const auto &[m, h] : pathIt->second) {
            if (!allow.empty())
                allow += ", ";
            allow += m;
            if (m == "GET")
                allow += ", HEAD";
        }
        HttpResponse resp = plain(405, "method not allowed\n");
        resp.headers.emplace_back("Allow", allow);
        sendResponse(fd, resp);
        ++served;
        return;
    }

    const std::string headerBlock = req.substr(0, headerEnd);
    const bool wantsBody = method != "GET" && method != "HEAD";
    std::string body;
    if (wantsBody) {
        const std::string lenText =
            findHeader(headerBlock, "Content-Length");
        if (lenText.empty()) {
            sendResponse(fd, plain(411, "length required\n"));
            ++served;
            return;
        }
        char *end = nullptr;
        const unsigned long long declared =
            std::strtoull(lenText.c_str(), &end, 10);
        if (end == lenText.c_str() || *end != '\0') {
            sendResponse(fd, plain(400, "bad Content-Length\n"));
            ++served;
            return;
        }
        if (declared > maxBodyBytes) {
            // Refuse before reading: the client learns the cap from
            // the error text instead of timing out mid-upload.
            sendResponse(
                fd, plain(413, "request body exceeds " +
                                   std::to_string(maxBodyBytes) +
                                   " bytes\n"));
            ++served;
            return;
        }
        body = req.substr(headerEnd + 4);
        while (body.size() < declared) {
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0)
                return; // client died mid-body; nothing to answer
            body.append(buf, static_cast<std::size_t>(n));
        }
        body.resize(declared);
    }

    HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = std::move(body);
    request.headerBlock = headerBlock;
    HttpResponse resp;
    // A throwing handler must not unwind the listener thread; the
    // client gets a 500 and the server lives on.
    try {
        resp = methodIt->second(request);
    } catch (const std::exception &e) {
        resp = plain(500, std::string(e.what()) + "\n");
    }
    if (method == "HEAD")
        resp.body.clear();
    sendResponse(fd, resp);
    ++served;
}

} // namespace irtherm::obs
