#include "obs/trace_clock.hh"

namespace irtherm::obs
{

namespace
{

/** Both clocks sampled back to back; skew is sub-microsecond. */
struct EpochPair
{
    std::chrono::steady_clock::time_point mono;
    double wallUnixSeconds;

    EpochPair()
        : mono(std::chrono::steady_clock::now()),
          wallUnixSeconds(
              std::chrono::duration_cast<
                  std::chrono::duration<double>>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count())
    {}
};

const EpochPair &
epochPair()
{
    static const EpochPair pair;
    return pair;
}

} // namespace

std::chrono::steady_clock::time_point
traceEpoch()
{
    return epochPair().mono;
}

double
monotonicSeconds(std::chrono::steady_clock::time_point t)
{
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               t - epochPair().mono)
        .count();
}

double
monotonicSeconds()
{
    // Touch the epoch before sampling: on the very first call the
    // static must be captured first, or "now" lands a hair *before*
    // the epoch and the process's first timestamp goes negative.
    const EpochPair &epoch = epochPair();
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::steady_clock::now() - epoch.mono)
        .count();
}

double
wallClockStartUnixSeconds()
{
    return epochPair().wallUnixSeconds;
}

} // namespace irtherm::obs
