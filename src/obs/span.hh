/**
 * @file
 * Hierarchical causal spans: RAII-scoped timed regions with a
 * thread-local parent stack, per-span key/value attributes, and a
 * bounded recorder exporting Chrome/Perfetto trace_event JSON.
 *
 * Where the MetricsRegistry answers "how many / how long in total"
 * and the EventTrace answers "what state changes happened", spans
 * answer *why is this slow*: each ScopedSpan nests under whatever
 * span is open on the same thread, so a sweep job's timeline reads
 * sweep.job -> core.steady_solve -> solve.tier -> numeric.cg with
 * the fallback escalations visible as siblings.
 *
 * Recording is off by default (SpanRecorder::global().setEnabled).
 * A disabled ScopedSpan costs one relaxed atomic load; under
 * IRTHERM_METRICS_ENABLED=0 the class body compiles to nothing, so
 * instrumented hot paths reference no telemetry symbols at all —
 * the same compile-out guarantee the event macro gives.
 *
 * Completed spans land in a bounded ring (oldest overwritten,
 * dropped count maintained). Live spans are additionally tracked
 * per thread so the status endpoint can report each worker's
 * current span path ("sweep.job/core.steady_solve/numeric.cg")
 * while the job is still running.
 */

#ifndef IRTHERM_OBS_SPAN_HH
#define IRTHERM_OBS_SPAN_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/event_trace.hh" // EventField, kMetricsEnabled
#include "obs/trace_clock.hh"

namespace irtherm::obs
{

/** One completed span, as stored by the recorder. */
struct SpanRecord
{
    std::uint64_t id = 0;       ///< process-unique, starts at 1
    std::uint64_t parentId = 0; ///< 0 = root (no enclosing span)
    std::uint32_t threadIndex = 0; ///< recorder-assigned dense id
    std::uint32_t depth = 0;       ///< nesting depth at open (root 0)
    std::string name;              ///< e.g. "core.steady_solve"
    double startSeconds = 0.0;     ///< from traceEpoch()
    double durationSeconds = 0.0;
    std::vector<EventField> attrs;
};

/**
 * Bounded, thread-safe buffer of completed spans plus a registry of
 * live (still-open) per-thread span stacks.
 */
class SpanRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = 65536;

    explicit SpanRecorder(std::size_t capacity = kDefaultCapacity);

    /** Start / stop recording (cheap relaxed-atomic check). */
    void setEnabled(bool enabled);

    bool
    enabled() const
    {
        return kMetricsEnabled && on.load(std::memory_order_relaxed);
    }

    /** Replace the capacity; buffered spans are discarded. */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const;

    /** Append one completed span. No-op while disabled. */
    void record(SpanRecord rec);

    /** Spans currently buffered (<= capacity). */
    std::size_t size() const;

    /** Total spans ever recorded (including since-overwritten). */
    std::uint64_t recorded() const;

    /** Spans overwritten because the ring was full. */
    std::uint64_t dropped() const;

    /** Copy of the buffered spans, oldest-recorded first. */
    std::vector<SpanRecord> snapshot() const;

    /** Drop buffered spans and zero the counters. Thread labels and
     *  live stacks are untouched (they belong to their threads). */
    void clear();

    /** One thread's currently-open span chain, root first. */
    struct LivePath
    {
        std::uint32_t threadIndex = 0;
        std::string label;       ///< setThreadLabel(); may be empty
        std::string path;        ///< "a/b/c"; empty = idle thread
        double openSeconds = 0.0;///< start of the innermost span
    };

    /** Live span path of every registered thread (idle ones too). */
    std::vector<LivePath> livePaths() const;

    /** Label -> dense-index map of every thread ever seen. */
    std::vector<std::pair<std::uint32_t, std::string>>
    threadLabels() const;

    /**
     * Name the calling thread in live paths and the trace_event
     * export ("worker3", "main"). Safe to call repeatedly.
     */
    static void setThreadLabel(const std::string &label);

    /**
     * Id of the calling thread's innermost open span, or 0 when no
     * span is open (or recording is disabled / compiled out). Used
     * by correlation-id consumers such as the JSON log sink.
     */
    static std::uint64_t currentSpanId();

    /** The process-wide recorder used by every ScopedSpan. */
    static SpanRecorder &global();

  private:
    friend class ScopedSpan;
    struct ThreadSlot;

    /** The calling thread's slot on the global recorder,
     *  registering it on first use. */
    static ThreadSlot &threadSlot();

    mutable std::mutex mu;
    std::vector<SpanRecord> ring;
    std::size_t cap;
    std::size_t head = 0;
    std::size_t count = 0;
    std::uint64_t total = 0;
    std::uint64_t droppedCount = 0;
    std::atomic<bool> on{false};

    mutable std::mutex threadsMu;
    std::vector<ThreadSlot *> threads; ///< live registered threads
    /** Labels survive thread exit (needed at export time). */
    std::vector<std::pair<std::uint32_t, std::string>> labels;
    std::uint32_t nextThreadIndex = 0;
};

#if IRTHERM_METRICS_ENABLED

/**
 * RAII span: opens on construction (nesting under the thread's
 * current span), records on destruction. Attributes added via
 * attr() chain fluently:
 *
 *   obs::ScopedSpan span("core.steady_solve");
 *   span.attr("nodes", n);
 *   ...
 *   span.attr("iterations", res.iterations);
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach a key/value attribute (numeric or text). */
    template <typename V>
    ScopedSpan &
    attr(std::string key, V value)
    {
        if (active)
            rec.attrs.emplace_back(std::move(key), std::move(value));
        return *this;
    }

  private:
    bool active = false; ///< recorder was enabled at open
    SpanRecord rec;
};

#else // IRTHERM_METRICS_ENABLED == 0: inert, references nothing

class ScopedSpan
{
  public:
    explicit ScopedSpan(const std::string &) {}
    explicit ScopedSpan(const char *) {}

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    template <typename V>
    ScopedSpan &
    attr(const std::string &, V &&)
    {
        return *this;
    }
};

#endif // IRTHERM_METRICS_ENABLED

} // namespace irtherm::obs

#endif // IRTHERM_OBS_SPAN_HH
