/**
 * @file
 * Exporters for the metrics registry and the event trace.
 *
 * Formats:
 *  - JSON stats document (schema "irtherm.stats.v1"): one object
 *    with counters / gauges / timers / histograms sections keyed by
 *    metric name. Histograms list only their non-empty buckets.
 *  - CSV flat dump via the base/table machinery: one row per metric
 *    with name, kind, and summary values.
 *  - JSONL trace: one JSON object per line per event, in recording
 *    order.
 *  - Human summary: aligned TextTable for end-of-run CLI output.
 */

#ifndef IRTHERM_OBS_EXPORT_HH
#define IRTHERM_OBS_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/event_trace.hh"
#include "obs/metrics.hh"

namespace irtherm::obs
{

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Serialize the registry as an "irtherm.stats.v1" JSON document. */
std::string metricsToJson(const MetricsRegistry &reg);

/** Write metricsToJson(reg) to @p os. */
void writeMetricsJson(std::ostream &os, const MetricsRegistry &reg);

/** One CSV row per metric: name, kind, count, value, mean, min, max. */
void writeMetricsCsv(std::ostream &os, const MetricsRegistry &reg);

/** One JSON object per line per buffered event, oldest first. */
void writeTraceJsonl(std::ostream &os, const EventTrace &trace);

/** Aligned human-readable registry summary (CLI end-of-run). */
void printMetricsSummary(std::ostream &os, const MetricsRegistry &reg);

} // namespace irtherm::obs

#endif // IRTHERM_OBS_EXPORT_HH
