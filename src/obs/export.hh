/**
 * @file
 * Exporters for the metrics registry and the event trace.
 *
 * Formats:
 *  - JSON stats document (schema "irtherm.stats.v1"): one object
 *    with counters / gauges / timers / histograms sections keyed by
 *    metric name. Histograms list only their non-empty buckets.
 *  - CSV flat dump via the base/table machinery: one row per metric
 *    with name, kind, and summary values.
 *  - JSONL trace: a meta header line (schema + wall-clock start of
 *    the shared trace epoch), then one JSON object per line per
 *    event, in recording order.
 *  - Chrome/Perfetto trace_event JSON: spans as matched B/E duration
 *    pairs (plus thread_name metadata and optional event-trace
 *    instants), loadable directly in chrome://tracing or Perfetto.
 *  - Prometheus text exposition format for the /metrics endpoint.
 *  - Human summary: aligned TextTable for end-of-run CLI output.
 */

#ifndef IRTHERM_OBS_EXPORT_HH
#define IRTHERM_OBS_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace irtherm::obs
{

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Serialize the registry as an "irtherm.stats.v1" JSON document. */
std::string metricsToJson(const MetricsRegistry &reg);

/** Write metricsToJson(reg) to @p os. */
void writeMetricsJson(std::ostream &os, const MetricsRegistry &reg);

/** One CSV row per metric: name, kind, count, value, mean, min, max. */
void writeMetricsCsv(std::ostream &os, const MetricsRegistry &reg);

/** Meta header line, then one JSON object per buffered event. */
void writeTraceJsonl(std::ostream &os, const EventTrace &trace);

/**
 * Serialize buffered spans as a Chrome/Perfetto trace_event JSON
 * document: "B"/"E" duration pairs per span (ts in microseconds on
 * the shared trace epoch), "M" thread_name metadata from the
 * recorder's thread labels, and — when @p overlay is non-null — the
 * event trace as "i" instant events on the same timeline. The
 * wall-clock instant of the epoch rides along as a top-level
 * "wall_start_unix_s" field (ignored by viewers, kept for tools).
 */
std::string spansToTraceJson(const SpanRecorder &rec,
                             const EventTrace *overlay = nullptr);

/** Write spansToTraceJson() to @p os. */
void writeSpansTraceJson(std::ostream &os, const SpanRecorder &rec,
                         const EventTrace *overlay = nullptr);

/**
 * Serialize the registry in Prometheus text exposition format:
 * counters as `<name>_total`, gauges verbatim, timers as summaries
 * with p50/p95/p99 quantile lines, histograms with cumulative
 * `_bucket{le=...}` lines. Metric names are sanitized (dots become
 * underscores) and prefixed `irtherm_`.
 */
std::string metricsToPrometheus(const MetricsRegistry &reg);

/** Aligned human-readable registry summary (CLI end-of-run). */
void printMetricsSummary(std::ostream &os, const MetricsRegistry &reg);

} // namespace irtherm::obs

#endif // IRTHERM_OBS_EXPORT_HH
