#include "obs/export.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "base/fault_injection.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "obs/trace_clock.hh"

namespace irtherm::obs
{

namespace
{

/** Shortest round-trippable decimal for a double (JSON-safe). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the shorter %g form when it round-trips exactly.
    char shortBuf[40];
    std::snprintf(shortBuf, sizeof(shortBuf), "%g", v);
    double back = 0.0;
    std::sscanf(shortBuf, "%lf", &back);
    return back == v ? shortBuf : buf;
}

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

void
appendHistogramJson(std::ostringstream &os, const Histogram &h)
{
    os << "{\"count\":" << h.count()
       << ",\"sum\":" << jsonNumber(h.sum())
       << ",\"mean\":" << jsonNumber(h.mean());
    if (h.count() > 0) {
        os << ",\"min\":" << jsonNumber(h.min())
           << ",\"max\":" << jsonNumber(h.max())
           << ",\"p50\":" << jsonNumber(histogramQuantile(h, 0.50))
           << ",\"p95\":" << jsonNumber(histogramQuantile(h, 0.95))
           << ",\"p99\":" << jsonNumber(histogramQuantile(h, 0.99));
    }
    os << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
        const std::uint64_t c = h.bucketCount(i);
        if (c == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"lo\":" << jsonNumber(Histogram::bucketLowerBound(i))
           << ",\"hi\":" << jsonNumber(Histogram::bucketUpperBound(i))
           << ",\"count\":" << c << "}";
    }
    os << "]}";
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

/**
 * Pull the thread pool's internal counters (base/ cannot depend on
 * obs/, so the pool keeps its own atomics) into gauges at export
 * time. Only the global registry gets them — custom registries used
 * in tests stay exactly as their owners populated them.
 */
void
syncThreadPoolGauges(const MetricsRegistry &reg)
{
    if (&reg != &MetricsRegistry::global())
        return;
    MetricsRegistry &g = MetricsRegistry::global();
    const ThreadPool::Stats s = ThreadPool::cumulativeStats();
    g.gauge("base.pool.threads")
        .set(static_cast<double>(ThreadPool::plannedGlobalThreads()));
    g.gauge("base.pool.parallel_regions")
        .set(static_cast<double>(s.parallelRegions));
    g.gauge("base.pool.chunks").set(static_cast<double>(s.chunks));
    g.gauge("base.pool.serial_fallbacks")
        .set(static_cast<double>(s.serialFallbacks));
    g.gauge("base.pool.region_time_s")
        .set(1e-9 * static_cast<double>(s.regionNanos));
    // Same pattern for the fault injector (also in base/): surface
    // how many faults actually fired so an instrumented run's stats
    // dump proves whether the injection campaign reached its targets.
    g.gauge("resilience.faults.injected")
        .set(static_cast<double>(FaultInjector::global().fired()));
}

} // namespace

std::string
metricsToJson(const MetricsRegistry &reg)
{
    syncThreadPoolGauges(reg);
    const auto names = reg.names();

    std::ostringstream os;
    os << "{\"schema\":\"irtherm.stats.v1\",\"metrics_enabled\":"
       << (kMetricsEnabled ? "true" : "false")
       << ",\"wall_start_unix_s\":"
       << jsonNumber(wallClockStartUnixSeconds());

    for (const MetricKind kind :
         {MetricKind::Counter, MetricKind::Gauge, MetricKind::Timer,
          MetricKind::Histogram}) {
        switch (kind) {
          case MetricKind::Counter:
            os << ",\"counters\":{";
            break;
          case MetricKind::Gauge:
            os << ",\"gauges\":{";
            break;
          case MetricKind::Timer:
            os << ",\"timers\":{";
            break;
          case MetricKind::Histogram:
            os << ",\"histograms\":{";
            break;
        }
        bool first = true;
        for (const auto &[name, k] : names) {
            if (k != kind)
                continue;
            if (!first)
                os << ",";
            first = false;
            os << jsonString(name) << ":";
            switch (kind) {
              case MetricKind::Counter:
                os << reg.counterAt(name).value();
                break;
              case MetricKind::Gauge:
                os << jsonNumber(reg.gaugeAt(name).value());
                break;
              case MetricKind::Timer: {
                const Timer &t = reg.timerAt(name);
                const Histogram &d = t.distribution();
                os << "{\"count\":" << t.count()
                   << ",\"total_s\":" << jsonNumber(t.totalSeconds())
                   << ",\"mean_s\":" << jsonNumber(t.meanSeconds());
                if (d.count() > 0) {
                    os << ",\"p50_s\":"
                       << jsonNumber(histogramQuantile(d, 0.50))
                       << ",\"p95_s\":"
                       << jsonNumber(histogramQuantile(d, 0.95))
                       << ",\"p99_s\":"
                       << jsonNumber(histogramQuantile(d, 0.99));
                }
                os << "}";
                break;
              }
              case MetricKind::Histogram:
                appendHistogramJson(os, reg.histogramAt(name));
                break;
            }
        }
        os << "}";
    }
    os << "}";
    return os.str();
}

void
writeMetricsJson(std::ostream &os, const MetricsRegistry &reg)
{
    os << metricsToJson(reg) << "\n";
}

namespace
{

/** Uniform per-metric summary row: count, value, mean, p95, min,
 *  max. */
struct MetricRow
{
    std::string kind;
    std::string count;
    std::string value;
    std::string mean;
    std::string p95;
    std::string min;
    std::string max;
};

MetricRow
summarize(const MetricsRegistry &reg, const std::string &name,
          MetricKind kind)
{
    MetricRow row;
    switch (kind) {
      case MetricKind::Counter:
        row.kind = "counter";
        row.value = std::to_string(reg.counterAt(name).value());
        break;
      case MetricKind::Gauge:
        row.kind = "gauge";
        row.value = jsonNumber(reg.gaugeAt(name).value());
        break;
      case MetricKind::Timer: {
        const Timer &t = reg.timerAt(name);
        row.kind = "timer";
        row.count = std::to_string(t.count());
        row.value = jsonNumber(t.totalSeconds());
        row.mean = jsonNumber(t.meanSeconds());
        if (t.distribution().count() > 0)
            row.p95 =
                jsonNumber(histogramQuantile(t.distribution(), 0.95));
        break;
      }
      case MetricKind::Histogram: {
        const Histogram &h = reg.histogramAt(name);
        row.kind = "histogram";
        row.count = std::to_string(h.count());
        row.value = jsonNumber(h.sum());
        row.mean = jsonNumber(h.mean());
        if (h.count() > 0) {
            row.p95 = jsonNumber(histogramQuantile(h, 0.95));
            row.min = jsonNumber(h.min());
            row.max = jsonNumber(h.max());
        }
        break;
      }
    }
    return row;
}

TextTable
metricsTable(const MetricsRegistry &reg)
{
    TextTable t({"metric", "kind", "count", "value", "mean", "p95",
                 "min", "max"});
    for (const auto &[name, kind] : reg.names()) {
        const MetricRow row = summarize(reg, name, kind);
        t.addRow({name, row.kind, row.count, row.value, row.mean,
                  row.p95, row.min, row.max});
    }
    return t;
}

} // namespace

void
writeMetricsCsv(std::ostream &os, const MetricsRegistry &reg)
{
    syncThreadPoolGauges(reg);
    metricsTable(reg).printCsv(os);
}

void
printMetricsSummary(std::ostream &os, const MetricsRegistry &reg)
{
    syncThreadPoolGauges(reg);
    metricsTable(reg).print(os);
}

void
writeTraceJsonl(std::ostream &os, const EventTrace &trace)
{
    // Meta header: lets a reader map the monotonic wall_s offsets
    // (shared trace epoch) back to civil time.
    os << "{\"schema\":\"irtherm.trace.v1\",\"wall_start_unix_s\":"
       << jsonNumber(wallClockStartUnixSeconds()) << "}\n";
    for (const TraceEvent &e : trace.snapshot()) {
        os << "{\"seq\":" << e.seq
           << ",\"wall_s\":" << jsonNumber(e.wallSeconds)
           << ",\"type\":" << jsonString(e.type) << ",\"fields\":{";
        bool first = true;
        for (const EventField &f : e.fields) {
            if (!first)
                os << ",";
            first = false;
            os << jsonString(f.key) << ":";
            if (f.numeric)
                os << jsonNumber(f.num);
            else
                os << jsonString(f.text);
        }
        os << "}}\n";
    }
}

namespace
{

/** One trace_event entry plus its sort keys. */
struct TraceEntry
{
    double tsUs = 0.0;
    int phaseOrder = 0; ///< M=0, E=1, B=2, i=3 at equal ts
    int depthKey = 0;   ///< B: depth asc; E: -depth (deepest first)
    std::string json;
};

void
appendAttrJson(std::ostringstream &os, const EventField &f)
{
    os << jsonString(f.key) << ":";
    if (f.numeric)
        os << jsonNumber(f.num);
    else
        os << jsonString(f.text);
}

} // namespace

std::string
spansToTraceJson(const SpanRecorder &rec, const EventTrace *overlay)
{
    std::vector<TraceEntry> entries;

    // Thread-name metadata. chrome://tracing keys rows on (pid,
    // tid); unnamed threads fall back to "thread <i>".
    for (const auto &[index, label] : rec.threadLabels()) {
        std::ostringstream os;
        const std::string name =
            label.empty() ? "thread " + std::to_string(index) : label;
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1"
           << ",\"tid\":" << index << ",\"args\":{\"name\":"
           << jsonString(name) << "}}";
        entries.push_back({0.0, 0, 0, os.str()});
    }

    for (const SpanRecord &s : rec.snapshot()) {
        const double beginUs = s.startSeconds * 1e6;
        const double endUs =
            (s.startSeconds + s.durationSeconds) * 1e6;
        {
            std::ostringstream os;
            os << "{\"ph\":\"B\",\"name\":" << jsonString(s.name)
               << ",\"cat\":\"span\",\"pid\":1,\"tid\":"
               << s.threadIndex << ",\"ts\":" << jsonNumber(beginUs)
               << ",\"args\":{\"id\":" << s.id
               << ",\"parent\":" << s.parentId;
            for (const EventField &f : s.attrs) {
                os << ",";
                appendAttrJson(os, f);
            }
            os << "}}";
            entries.push_back({beginUs, 2,
                               static_cast<int>(s.depth), os.str()});
        }
        {
            std::ostringstream os;
            os << "{\"ph\":\"E\",\"name\":" << jsonString(s.name)
               << ",\"cat\":\"span\",\"pid\":1,\"tid\":"
               << s.threadIndex << ",\"ts\":" << jsonNumber(endUs)
               << "}";
            entries.push_back({endUs, 1,
                               -static_cast<int>(s.depth), os.str()});
        }
    }

    if (overlay != nullptr) {
        for (const TraceEvent &e : overlay->snapshot()) {
            const double tsUs = e.wallSeconds * 1e6;
            std::ostringstream os;
            // Process-scoped instants: events carry no thread id.
            os << "{\"ph\":\"i\",\"s\":\"p\",\"name\":"
               << jsonString(e.type)
               << ",\"cat\":\"event\",\"pid\":1,\"tid\":0,\"ts\":"
               << jsonNumber(tsUs) << ",\"args\":{";
            bool first = true;
            for (const EventField &f : e.fields) {
                if (!first)
                    os << ",";
                first = false;
                appendAttrJson(os, f);
            }
            os << "}}";
            entries.push_back({tsUs, 3, 0, os.str()});
        }
    }

    // Duration events must nest: at a shared timestamp, close the
    // deepest span first and open the shallowest first, with all
    // closes ahead of any opens.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const TraceEntry &a, const TraceEntry &b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         if (a.phaseOrder != b.phaseOrder)
                             return a.phaseOrder < b.phaseOrder;
                         return a.depthKey < b.depthKey;
                     });

    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"wall_start_unix_s\":"
       << jsonNumber(wallClockStartUnixSeconds())
       << ",\"traceEvents\":[";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\n" << entries[i].json;
    }
    os << "\n]}\n";
    return os.str();
}

void
writeSpansTraceJson(std::ostream &os, const SpanRecorder &rec,
                    const EventTrace *overlay)
{
    os << spansToTraceJson(rec, overlay);
}

namespace
{

/** Prometheus sample value (the format spells infinities +Inf). */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return jsonNumber(v);
}

/** irtherm_ prefix plus [a-zA-Z0-9_:] body, dots to underscores. */
std::string
promName(const std::string &name)
{
    std::string out = "irtherm_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == ':';
        out += ok ? c : '_';
    }
    return out;
}

/**
 * "# HELP <exposed> <text>" line. Help text is synthesized from the
 * registry's dotted name — the registry stores no doc strings, but
 * scrapers (and promtool check metrics) want the line present. HELP
 * text escapes only backslash and newline per the exposition format;
 * dotted names contain neither.
 */
std::string
promHelp(const std::string &exposed, const std::string &dottedName,
         const char *kindText)
{
    return "# HELP " + exposed + " irtherm " + kindText + " '" +
           dottedName + "'\n";
}

} // namespace

std::string
metricsToPrometheus(const MetricsRegistry &reg)
{
    syncThreadPoolGauges(reg);
    std::ostringstream os;
    for (const auto &[name, kind] : reg.names()) {
        const std::string base = promName(name);
        switch (kind) {
          case MetricKind::Counter:
            os << promHelp(base + "_total", name, "counter")
               << "# TYPE " << base << "_total counter\n"
               << base << "_total "
               << reg.counterAt(name).value() << "\n";
            break;
          case MetricKind::Gauge:
            os << promHelp(base, name, "gauge")
               << "# TYPE " << base << " gauge\n"
               << base << " "
               << promNumber(reg.gaugeAt(name).value()) << "\n";
            break;
          case MetricKind::Timer: {
            const Timer &t = reg.timerAt(name);
            const Histogram &d = t.distribution();
            const std::string s = base + "_seconds";
            os << promHelp(s, name, "timer")
               << "# TYPE " << s << " summary\n";
            for (const double q : {0.5, 0.95, 0.99}) {
                os << s << "{quantile=\"" << promNumber(q) << "\"} "
                   << promNumber(d.count() > 0
                                     ? histogramQuantile(d, q)
                                     : 0.0)
                   << "\n";
            }
            os << s << "_sum " << promNumber(t.totalSeconds()) << "\n"
               << s << "_count " << t.count() << "\n";
            break;
          }
          case MetricKind::Histogram: {
            const Histogram &h = reg.histogramAt(name);
            os << promHelp(base, name, "histogram")
               << "# TYPE " << base << " histogram\n";
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < Histogram::kBucketCount;
                 ++i) {
                const std::uint64_t c = h.bucketCount(i);
                if (c == 0)
                    continue;
                cum += c;
                os << base << "_bucket{le=\""
                   << promNumber(Histogram::bucketUpperBound(i))
                   << "\"} " << cum << "\n";
            }
            os << base << "_bucket{le=\"+Inf\"} " << h.count() << "\n"
               << base << "_sum " << promNumber(h.sum()) << "\n"
               << base << "_count " << h.count() << "\n";
            break;
          }
        }
    }
    return os.str();
}

} // namespace irtherm::obs
