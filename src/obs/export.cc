#include "obs/export.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "base/fault_injection.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"

namespace irtherm::obs
{

namespace
{

/** Shortest round-trippable decimal for a double (JSON-safe). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the shorter %g form when it round-trips exactly.
    char shortBuf[40];
    std::snprintf(shortBuf, sizeof(shortBuf), "%g", v);
    double back = 0.0;
    std::sscanf(shortBuf, "%lf", &back);
    return back == v ? shortBuf : buf;
}

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

void
appendHistogramJson(std::ostringstream &os, const Histogram &h)
{
    os << "{\"count\":" << h.count()
       << ",\"sum\":" << jsonNumber(h.sum())
       << ",\"mean\":" << jsonNumber(h.mean());
    if (h.count() > 0) {
        os << ",\"min\":" << jsonNumber(h.min())
           << ",\"max\":" << jsonNumber(h.max());
    }
    os << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
        const std::uint64_t c = h.bucketCount(i);
        if (c == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"lo\":" << jsonNumber(Histogram::bucketLowerBound(i))
           << ",\"hi\":" << jsonNumber(Histogram::bucketUpperBound(i))
           << ",\"count\":" << c << "}";
    }
    os << "]}";
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

/**
 * Pull the thread pool's internal counters (base/ cannot depend on
 * obs/, so the pool keeps its own atomics) into gauges at export
 * time. Only the global registry gets them — custom registries used
 * in tests stay exactly as their owners populated them.
 */
void
syncThreadPoolGauges(const MetricsRegistry &reg)
{
    if (&reg != &MetricsRegistry::global())
        return;
    MetricsRegistry &g = MetricsRegistry::global();
    const ThreadPool::Stats s = ThreadPool::cumulativeStats();
    g.gauge("base.pool.threads")
        .set(static_cast<double>(ThreadPool::plannedGlobalThreads()));
    g.gauge("base.pool.parallel_regions")
        .set(static_cast<double>(s.parallelRegions));
    g.gauge("base.pool.chunks").set(static_cast<double>(s.chunks));
    g.gauge("base.pool.serial_fallbacks")
        .set(static_cast<double>(s.serialFallbacks));
    g.gauge("base.pool.region_time_s")
        .set(1e-9 * static_cast<double>(s.regionNanos));
    // Same pattern for the fault injector (also in base/): surface
    // how many faults actually fired so an instrumented run's stats
    // dump proves whether the injection campaign reached its targets.
    g.gauge("resilience.faults.injected")
        .set(static_cast<double>(FaultInjector::global().fired()));
}

} // namespace

std::string
metricsToJson(const MetricsRegistry &reg)
{
    syncThreadPoolGauges(reg);
    const auto names = reg.names();

    std::ostringstream os;
    os << "{\"schema\":\"irtherm.stats.v1\",\"metrics_enabled\":"
       << (kMetricsEnabled ? "true" : "false");

    for (const MetricKind kind :
         {MetricKind::Counter, MetricKind::Gauge, MetricKind::Timer,
          MetricKind::Histogram}) {
        switch (kind) {
          case MetricKind::Counter:
            os << ",\"counters\":{";
            break;
          case MetricKind::Gauge:
            os << ",\"gauges\":{";
            break;
          case MetricKind::Timer:
            os << ",\"timers\":{";
            break;
          case MetricKind::Histogram:
            os << ",\"histograms\":{";
            break;
        }
        bool first = true;
        for (const auto &[name, k] : names) {
            if (k != kind)
                continue;
            if (!first)
                os << ",";
            first = false;
            os << jsonString(name) << ":";
            switch (kind) {
              case MetricKind::Counter:
                os << reg.counterAt(name).value();
                break;
              case MetricKind::Gauge:
                os << jsonNumber(reg.gaugeAt(name).value());
                break;
              case MetricKind::Timer: {
                const Timer &t = reg.timerAt(name);
                os << "{\"count\":" << t.count()
                   << ",\"total_s\":" << jsonNumber(t.totalSeconds())
                   << ",\"mean_s\":" << jsonNumber(t.meanSeconds())
                   << "}";
                break;
              }
              case MetricKind::Histogram:
                appendHistogramJson(os, reg.histogramAt(name));
                break;
            }
        }
        os << "}";
    }
    os << "}";
    return os.str();
}

void
writeMetricsJson(std::ostream &os, const MetricsRegistry &reg)
{
    os << metricsToJson(reg) << "\n";
}

namespace
{

/** Uniform per-metric summary row: count, value, mean, min, max. */
struct MetricRow
{
    std::string kind;
    std::string count;
    std::string value;
    std::string mean;
    std::string min;
    std::string max;
};

MetricRow
summarize(const MetricsRegistry &reg, const std::string &name,
          MetricKind kind)
{
    MetricRow row;
    switch (kind) {
      case MetricKind::Counter:
        row.kind = "counter";
        row.value = std::to_string(reg.counterAt(name).value());
        break;
      case MetricKind::Gauge:
        row.kind = "gauge";
        row.value = jsonNumber(reg.gaugeAt(name).value());
        break;
      case MetricKind::Timer: {
        const Timer &t = reg.timerAt(name);
        row.kind = "timer";
        row.count = std::to_string(t.count());
        row.value = jsonNumber(t.totalSeconds());
        row.mean = jsonNumber(t.meanSeconds());
        break;
      }
      case MetricKind::Histogram: {
        const Histogram &h = reg.histogramAt(name);
        row.kind = "histogram";
        row.count = std::to_string(h.count());
        row.value = jsonNumber(h.sum());
        row.mean = jsonNumber(h.mean());
        if (h.count() > 0) {
            row.min = jsonNumber(h.min());
            row.max = jsonNumber(h.max());
        }
        break;
      }
    }
    return row;
}

TextTable
metricsTable(const MetricsRegistry &reg)
{
    TextTable t({"metric", "kind", "count", "value", "mean", "min",
                 "max"});
    for (const auto &[name, kind] : reg.names()) {
        const MetricRow row = summarize(reg, name, kind);
        t.addRow({name, row.kind, row.count, row.value, row.mean,
                  row.min, row.max});
    }
    return t;
}

} // namespace

void
writeMetricsCsv(std::ostream &os, const MetricsRegistry &reg)
{
    syncThreadPoolGauges(reg);
    metricsTable(reg).printCsv(os);
}

void
printMetricsSummary(std::ostream &os, const MetricsRegistry &reg)
{
    syncThreadPoolGauges(reg);
    metricsTable(reg).print(os);
}

void
writeTraceJsonl(std::ostream &os, const EventTrace &trace)
{
    for (const TraceEvent &e : trace.snapshot()) {
        os << "{\"seq\":" << e.seq
           << ",\"wall_s\":" << jsonNumber(e.wallSeconds)
           << ",\"type\":" << jsonString(e.type) << ",\"fields\":{";
        bool first = true;
        for (const EventField &f : e.fields) {
            if (!first)
                os << ",";
            first = false;
            os << jsonString(f.key) << ":";
            if (f.numeric)
                os << jsonNumber(f.num);
            else
                os << jsonString(f.text);
        }
        os << "}}\n";
    }
}

} // namespace irtherm::obs
