#include "obs/event_trace.hh"

#include "base/logging.hh"
#include "obs/trace_clock.hh"

namespace irtherm::obs
{

EventTrace::EventTrace(std::size_t capacity_) : cap(capacity_)
{
    if (cap == 0)
        fatal("EventTrace: zero capacity");
    ring.resize(cap);
}

void
EventTrace::setCapacity(std::size_t capacity_)
{
    if (capacity_ == 0)
        fatal("EventTrace: zero capacity");
    std::lock_guard<std::mutex> lock(mu);
    cap = capacity_;
    ring.assign(cap, TraceEvent{});
    head = 0;
    count = 0;
}

std::size_t
EventTrace::capacity() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cap;
}

void
EventTrace::setEnabled(bool enabled_)
{
    on.store(enabled_, std::memory_order_relaxed);
}

void
EventTrace::record(std::string type, std::vector<EventField> fields)
{
    if (!enabled())
        return;
    const double wall = monotonicSeconds();
    std::lock_guard<std::mutex> lock(mu);
    TraceEvent &slot = ring[head];
    if (count == cap)
        ++droppedCount; // overwriting the oldest event
    else
        ++count;
    slot.seq = seq++;
    slot.wallSeconds = wall;
    slot.type = std::move(type);
    slot.fields = std::move(fields);
    head = (head + 1) % cap;
}

std::size_t
EventTrace::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return count;
}

std::uint64_t
EventTrace::recorded() const
{
    std::lock_guard<std::mutex> lock(mu);
    return seq;
}

std::uint64_t
EventTrace::dropped() const
{
    std::lock_guard<std::mutex> lock(mu);
    return droppedCount;
}

std::vector<TraceEvent>
EventTrace::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<TraceEvent> out;
    out.reserve(count);
    const std::size_t first = (head + cap - count) % cap;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(first + i) % cap]);
    return out;
}

void
EventTrace::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    for (TraceEvent &e : ring)
        e = TraceEvent{};
    head = 0;
    count = 0;
    seq = 0;
    droppedCount = 0;
    // The timeline origin (shared trace epoch) deliberately does not
    // reset: a cleared-and-refilled trace still overlays spans.
}

EventTrace &
EventTrace::global()
{
    static EventTrace trace;
    return trace;
}

} // namespace irtherm::obs
