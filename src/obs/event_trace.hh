/**
 * @file
 * Structured event tracing: timestamped typed events with key/value
 * payloads in a bounded ring buffer, exportable as JSONL.
 *
 * Events are meant for *state transitions* (DTM engage/disengage,
 * sensor polls, steady-state initialization), not per-substep
 * telemetry — aggregates belong in the MetricsRegistry. The ring is
 * bounded: once full, the oldest event is overwritten and a dropped
 * counter increments, so a week-long DTM replay cannot grow memory
 * without bound.
 *
 * Recording is off by default. The IRTHERM_EVENT macro checks the
 * enabled flag *before* building the payload, and compiles away
 * entirely under IRTHERM_METRICS_ENABLED=0, so dormant trace points
 * cost one predictable branch at most.
 */

#ifndef IRTHERM_OBS_EVENT_TRACE_HH
#define IRTHERM_OBS_EVENT_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh" // kMetricsEnabled

namespace irtherm::obs
{

/** One key/value payload entry: either numeric or text. */
struct EventField
{
    EventField(std::string k, double v)
        : key(std::move(k)), num(v), numeric(true)
    {}
    EventField(std::string k, int v)
        : EventField(std::move(k), static_cast<double>(v))
    {}
    EventField(std::string k, std::size_t v)
        : EventField(std::move(k), static_cast<double>(v))
    {}
    EventField(std::string k, std::string v)
        : key(std::move(k)), text(std::move(v)), numeric(false)
    {}
    EventField(std::string k, const char *v)
        : EventField(std::move(k), std::string(v))
    {}

    std::string key;
    std::string text;
    double num = 0.0;
    bool numeric = true;
};

/** One recorded event. */
struct TraceEvent
{
    std::uint64_t seq = 0;   ///< global sequence number (monotonic)
    /** Monotonic seconds since the shared trace epoch
     *  (obs/trace_clock.hh) — the same timebase spans use, so events
     *  overlay directly on the Perfetto span timeline. */
    double wallSeconds = 0.0;
    std::string type;        ///< e.g. "dtm.engage"
    std::vector<EventField> fields;
};

/**
 * Bounded, thread-safe event ring buffer.
 */
class EventTrace
{
  public:
    static constexpr std::size_t kDefaultCapacity = 65536;

    explicit EventTrace(std::size_t capacity = kDefaultCapacity);

    /** Replace the capacity; existing events are discarded. */
    void setCapacity(std::size_t capacity);

    std::size_t capacity() const;

    /** Start / stop recording (cheap relaxed-atomic check). */
    void setEnabled(bool enabled);

    bool
    enabled() const
    {
        return kMetricsEnabled && on.load(std::memory_order_relaxed);
    }

    /**
     * Append one event. No-op while disabled. Prefer the
     * IRTHERM_EVENT macro, which skips payload construction when
     * the trace is off (or compiled out).
     */
    void record(std::string type, std::vector<EventField> fields);

    /** Events currently held (<= capacity). */
    std::size_t size() const;

    /** Total events ever recorded (including since-overwritten). */
    std::uint64_t recorded() const;

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const;

    /** Copy of the buffered events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Drop all buffered events and zero the counters. */
    void clear();

    /** The process-wide trace used by all irtherm trace points. */
    static EventTrace &global();

  private:
    mutable std::mutex mu;
    std::vector<TraceEvent> ring; ///< ring storage, capacity() slots
    std::size_t cap;
    std::size_t head = 0;  ///< next slot to write
    std::size_t count = 0; ///< valid slots
    std::uint64_t seq = 0;
    std::uint64_t droppedCount = 0;
    std::atomic<bool> on{false};
};

} // namespace irtherm::obs

#if IRTHERM_METRICS_ENABLED
/**
 * Record an event on the global trace iff recording is enabled.
 * Usage: IRTHERM_EVENT("dtm.engage", {"sim_time_s", now},
 *                      {"temp_k", temp});
 */
#define IRTHERM_EVENT(type, ...)                                        \
    do {                                                                \
        auto &irthermEvtTrace = ::irtherm::obs::EventTrace::global();   \
        if (irthermEvtTrace.enabled())                                  \
            irthermEvtTrace.record((type), {__VA_ARGS__});              \
    } while (0)
#else
#define IRTHERM_EVENT(type, ...)                                        \
    do {                                                                \
    } while (0)
#endif

#endif // IRTHERM_OBS_EVENT_TRACE_HH
