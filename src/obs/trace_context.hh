/**
 * @file
 * Distributed trace context for the sweep fabric.
 *
 * A fleet run shares one *trace id* (minted by the coordinator at
 * sweep start) and hands each lease a *span id* naming the
 * coordinator-side span the worker's activity logically nests under.
 * The pair travels between processes as the compact text form
 *
 *     <trace-id>-<span-id>        e.g. "9f2c41d0a6e83b17-000000000000002a"
 *
 * (two fixed-width lowercase hex fields, 16 chars each) carried both
 * in fabric JSON bodies ("trace" members) and in the
 * `X-Irtherm-Trace` HTTP header, mirroring how W3C traceparent rides
 * requests. Parsing is deliberately forgiving in outcome, strict in
 * format: a malformed context never throws — it parses to an invalid
 * context and the receiver degrades to a local trace, because
 * observability must never fail a job.
 *
 * The process-current context (set by the coordinator for itself,
 * and by a worker when it adopts a grant's context) is exposed for
 * correlation-id consumers such as the JSON log sink. Like the rest
 * of obs/, everything here is inert data plumbing under
 * IRTHERM_ENABLE_METRICS=OFF: span recording is compiled out
 * elsewhere, so the context merely rides along unused.
 */

#ifndef IRTHERM_OBS_TRACE_CONTEXT_HH
#define IRTHERM_OBS_TRACE_CONTEXT_HH

#include <cstdint>
#include <string>

namespace irtherm::obs
{

/** One propagated (trace id, parent span id) pair. */
struct TraceContext
{
    std::string traceId;     ///< 16 lowercase hex chars; "" = unset
    std::uint64_t spanId = 0; ///< parent span id on the minting side

    /** True when traceId is a well-formed 16-hex-char id. */
    bool valid() const;
};

/** Name of the HTTP header carrying the context. */
inline constexpr const char *kTraceHeaderName = "X-Irtherm-Trace";

/** Mint a fresh 16-hex-char trace id (random, not reproducible). */
std::string mintTraceId();

/** "<trace-id>-<16-hex span id>"; "" when @p ctx is invalid. */
std::string formatTraceContext(const TraceContext &ctx);

/**
 * Parse the wire form. Never throws: anything malformed (wrong
 * length, bad hex, missing separator) yields an invalid context.
 */
TraceContext parseTraceContext(const std::string &wire);

/** Fixed-width 16-char lowercase hex of @p v. */
std::string spanIdHex(std::uint64_t v);

/** Parse a 16-hex-char span id; 0 on anything malformed. */
std::uint64_t parseSpanIdHex(const std::string &hex);

/**
 * Process-current context for correlation-id consumers (JSON log
 * sink, campaign timelines). Thread-safe; starts invalid.
 */
void setProcessTraceContext(const TraceContext &ctx);
TraceContext processTraceContext();

} // namespace irtherm::obs

#endif // IRTHERM_OBS_TRACE_CONTEXT_HH
