#include "analysis/thermal_map.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "base/logging.hh"
#include "base/units.hh"

namespace irtherm
{

double
ThermalMap::maxTemp() const
{
    return *std::max_element(temps.begin(), temps.end());
}

double
ThermalMap::minTemp() const
{
    return *std::min_element(temps.begin(), temps.end());
}

double
ThermalMap::meanTemp() const
{
    double acc = 0.0;
    for (double t : temps)
        acc += t;
    return acc / static_cast<double>(temps.size());
}

std::pair<double, double>
ThermalMap::hottestLocation() const
{
    const auto it = std::max_element(temps.begin(), temps.end());
    const auto idx = static_cast<std::size_t>(it - temps.begin());
    const double dx = width / static_cast<double>(nx);
    const double dy = height / static_cast<double>(ny);
    return {(static_cast<double>(idx % nx) + 0.5) * dx,
            (static_cast<double>(idx / nx) + 0.5) * dy};
}

void
ThermalMap::writeCsv(std::ostream &out) const
{
    out << "x_m,y_m,temp_c\n";
    const double dx = width / static_cast<double>(nx);
    const double dy = height / static_cast<double>(ny);
    for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
            out << (static_cast<double>(ix) + 0.5) * dx << ","
                << (static_cast<double>(iy) + 0.5) * dy << ","
                << toCelsius(temps[iy * nx + ix]) << "\n";
        }
    }
}

void
ThermalMap::writePpm(std::ostream &out, double lo, double hi) const
{
    if (lo >= hi) {
        lo = minTemp();
        hi = maxTemp();
        if (hi - lo < 1e-12)
            hi = lo + 1.0;
    }
    out << "P3\n" << nx << " " << ny << "\n255\n";
    // Image rows run top to bottom; the map's y runs bottom to top.
    for (std::size_t row = 0; row < ny; ++row) {
        const std::size_t iy = ny - 1 - row;
        for (std::size_t ix = 0; ix < nx; ++ix) {
            const double f = std::clamp(
                (temps[iy * nx + ix] - lo) / (hi - lo), 0.0, 1.0);
            // Blue -> cyan -> yellow -> red ramp.
            const int r =
                static_cast<int>(255.0 * std::clamp(1.5 * f, 0.0, 1.0));
            const int g = static_cast<int>(
                255.0 * std::clamp(1.5 - std::abs(2.0 * f - 1.0) * 1.5,
                                   0.0, 1.0));
            const int b = static_cast<int>(
                255.0 * std::clamp(1.5 * (1.0 - f), 0.0, 1.0));
            out << r << " " << g << " " << b << " ";
        }
        out << "\n";
    }
}

std::string
ThermalMap::renderAscii(std::size_t columns) const
{
    if (columns == 0)
        fatal("renderAscii: zero width");
    static const char shades[] = " .:-=+*#%@";
    const std::size_t levels = sizeof(shades) - 2;

    const double lo = minTemp();
    const double hi = std::max(maxTemp(), lo + 1e-9);
    const std::size_t out_x = std::min(columns, nx);
    // Terminal cells are ~2x taller than wide; halve the row count
    // to keep the aspect ratio roughly square.
    const std::size_t out_y =
        std::max<std::size_t>(1, ny * out_x / nx / 2);

    std::string art;
    for (std::size_t ry = 0; ry < out_y; ++ry) {
        for (std::size_t rx = 0; rx < out_x; ++rx) {
            // Average the map cells this character covers.
            const std::size_t x0 = rx * nx / out_x;
            const std::size_t x1 =
                std::max(x0 + 1, (rx + 1) * nx / out_x);
            // Image rows run top-down; map y runs bottom-up.
            const std::size_t gy0 = (out_y - 1 - ry) * ny / out_y;
            const std::size_t gy1 =
                std::max(gy0 + 1, (out_y - ry) * ny / out_y);
            double acc = 0.0;
            std::size_t count = 0;
            for (std::size_t iy = gy0; iy < gy1; ++iy) {
                for (std::size_t ix = x0; ix < x1; ++ix) {
                    acc += temps[iy * nx + ix];
                    ++count;
                }
            }
            const double f =
                (acc / static_cast<double>(count) - lo) / (hi - lo);
            const auto idx = static_cast<std::size_t>(std::clamp(
                f * static_cast<double>(levels), 0.0,
                static_cast<double>(levels)));
            art += shades[idx];
        }
        art += '\n';
    }
    return art;
}

ThermalMap
ThermalMap::fromModel(const StackModel &model,
                      const std::vector<double> &node_temps)
{
    if (model.options().mode != ModelMode::Grid)
        fatal("ThermalMap::fromModel: model is not in grid mode");
    ThermalMap map;
    map.nx = model.options().gridNx;
    map.ny = model.options().gridNy;
    map.width = model.floorplan().width();
    map.height = model.floorplan().height();
    map.temps = model.siliconCellTemperatures(node_temps);
    return map;
}

} // namespace irtherm
