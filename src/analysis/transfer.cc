#include "analysis/transfer.hh"

#include "base/logging.hh"

namespace irtherm
{

PackageTransfer::PackageTransfer(const StackModel &rig_,
                                 const StackModel &deployment_,
                                 const TransferOptions &opts_)
    : rig(rig_), deployment(deployment_), opts(opts_),
      rigInversion(rig_), deploymentForward(deployment_)
{
    const Floorplan &a = rig.floorplan();
    const Floorplan &b = deployment.floorplan();
    if (a.blockCount() != b.blockCount())
        fatal("PackageTransfer: floorplans do not match");
    for (std::size_t i = 0; i < a.blockCount(); ++i) {
        if (a.block(i).name != b.block(i).name)
            fatal("PackageTransfer: block order mismatch at ", i);
    }
    if (opts.leakageModel &&
        opts.leakageModel->unitCount() != a.blockCount()) {
        fatal("PackageTransfer: leakage model unit count mismatch");
    }
}

std::vector<double>
PackageTransfer::leakageAt(const std::vector<double> &block_temps) const
{
    const Floorplan &fp = rig.floorplan();
    const WattchPowerModel &pm = *opts.leakageModel;
    std::vector<double> unit_temps(pm.unitCount());
    for (std::size_t b = 0; b < fp.blockCount(); ++b)
        unit_temps[pm.unitIndex(fp.block(b).name)] = block_temps[b];
    const std::vector<double> unit_leak = pm.leakagePower(unit_temps);
    std::vector<double> leak(fp.blockCount());
    for (std::size_t b = 0; b < fp.blockCount(); ++b)
        leak[b] = unit_leak[pm.unitIndex(fp.block(b).name)];
    return leak;
}

std::vector<double>
PackageTransfer::recoverPowers(
    const std::vector<double> &rig_temps) const
{
    std::vector<double> powers =
        rigInversion.estimatePowers(rig_temps);
    if (opts.leakageModel) {
        // Remove the rig-temperature leakage so only dynamic power
        // transfers across packages.
        const std::vector<double> leak = leakageAt(rig_temps);
        for (std::size_t b = 0; b < powers.size(); ++b)
            powers[b] -= leak[b];
    }
    return powers;
}

std::vector<double>
PackageTransfer::predictDeployment(
    const std::vector<double> &rig_temps) const
{
    const std::vector<double> dynamic = recoverPowers(rig_temps);
    if (!opts.leakageModel)
        return deploymentForward.predictTemperatures(dynamic);

    // Fixed point: deployment leakage depends on deployment
    // temperatures, which depend on deployment leakage. The map is a
    // mild contraction for realistic leakage fractions.
    std::vector<double> temps =
        deploymentForward.predictTemperatures(dynamic);
    for (std::size_t it = 0; it < opts.leakageIterations; ++it) {
        std::vector<double> total = dynamic;
        const std::vector<double> leak = leakageAt(temps);
        for (std::size_t b = 0; b < total.size(); ++b)
            total[b] += leak[b];
        temps = deploymentForward.predictTemperatures(total);
    }
    return temps;
}

} // namespace irtherm
