/**
 * @file
 * Steady-state power reverse-engineering from thermal maps.
 *
 * IR thermography is used to infer per-block power from a measured
 * temperature map (Hamann et al., Mesa-Martinez et al., as discussed
 * in the paper's Sec. 5.4). The inversion builds the linear map
 * R: block powers -> block temperature rises by probing the forward
 * model one block at a time, then solves the least-squares problem
 * for an observed map.
 *
 * The paper's warning is reproduced by inverting with a model whose
 * flow-direction handling differs from the model that generated the
 * observation: a direction-blind inversion of a directional
 * measurement systematically mis-attributes power downstream.
 */

#ifndef IRTHERM_ANALYSIS_INVERSION_HH
#define IRTHERM_ANALYSIS_INVERSION_HH

#include <vector>

#include "core/stack_model.hh"
#include "numeric/dense_matrix.hh"

namespace irtherm
{

/** Linear thermal response operator of one model. */
class PowerInversion
{
  public:
    /**
     * Probe @p model block by block to build the response matrix.
     * O(blocks) steady solves; do it once per model.
     */
    explicit PowerInversion(const StackModel &model);

    /**
     * Estimate block powers from observed block temperatures
     * (kelvin, absolute). Solves the normal equations of
     * R p = T - ambient.
     */
    std::vector<double>
    estimatePowers(const std::vector<double> &block_temps) const;

    /** Forward map: block powers -> block temperatures (kelvin). */
    std::vector<double>
    predictTemperatures(const std::vector<double> &block_powers) const;

    /** The response matrix (rises per watt). */
    const DenseMatrix &responseMatrix() const { return response; }

  private:
    const StackModel &model;
    DenseMatrix response;
};

} // namespace irtherm

#endif // IRTHERM_ANALYSIS_INVERSION_HH
