/**
 * @file
 * Descriptive statistics used by benches and tests.
 */

#ifndef IRTHERM_ANALYSIS_STATS_HH
#define IRTHERM_ANALYSIS_STATS_HH

#include <cstddef>
#include <vector>

namespace irtherm
{

/** Summary of a sample vector. */
struct Summary
{
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
};

/** Compute min/max/mean/stddev. @pre values non-empty */
Summary summarize(const std::vector<double> &values);

/**
 * Linear-interpolated percentile in [0, 100].
 * @pre values non-empty
 */
double percentile(std::vector<double> values, double pct);

/**
 * Largest rate of change |dv/dt| over consecutive samples of a
 * uniformly sampled trace (units of value per second). The paper's
 * Sec. 5.2 sensing-interval bound divides a resolution by this.
 */
double maxRate(const std::vector<double> &values, double dt);

/** Root-mean-square difference of two equal-length vectors. */
double rmsDifference(const std::vector<double> &a,
                     const std::vector<double> &b);

/** Maximum absolute difference of two equal-length vectors. */
double maxAbsDifference(const std::vector<double> &a,
                        const std::vector<double> &b);

} // namespace irtherm

#endif // IRTHERM_ANALYSIS_STATS_HH
