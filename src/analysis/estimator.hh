/**
 * @file
 * Model-assisted temperature estimation from sparse sensors.
 *
 * The paper's Sec. 5.4 closes: "We think a proper way is to combine
 * IR and sensor measurements and thermal modeling to achieve a
 * better thermal design." This module is that combination at
 * runtime: a handful of on-die sensors cannot see every hot spot
 * (Sec. 5.3), but the thermal model knows how block temperatures
 * co-vary — so the sensor readings constrain a regularized
 * least-squares estimate of the per-block *powers*, and the model
 * maps those back to a full-die temperature field.
 *
 * Estimate:  min_p ||S R p - (t_meas - amb)||^2
 *                + lambda ||p - p_prior||^2
 * where R is the block thermal-response matrix and S selects the
 * sensed blocks. The prior (e.g. an IR-derived average power map,
 * or the design power budget) anchors the unobserved directions.
 */

#ifndef IRTHERM_ANALYSIS_ESTIMATOR_HH
#define IRTHERM_ANALYSIS_ESTIMATOR_HH

#include <cstddef>
#include <vector>

#include "analysis/inversion.hh"
#include "core/stack_model.hh"
#include "dtm/sensor.hh"

namespace irtherm
{

/** Full-die temperature estimate reconstructed from sensors. */
struct EstimatedState
{
    std::vector<double> blockPowers;       ///< W
    std::vector<double> blockTemperatures; ///< kelvin, all blocks
};

/**
 * Sparse-sensor + model estimator over one StackModel.
 */
class ModelAssistedEstimator
{
  public:
    /**
     * @param model       deployment thermal model
     * @param sensors     sensor locations (each maps to the block
     *                    containing it; one sensor per block at most)
     * @param prior       per-block prior powers (W)
     * @param lambda      Tikhonov weight pulling toward the prior
     *                    (K^2/W^2 units; ~1e-2 works well)
     */
    ModelAssistedEstimator(const StackModel &model,
                           const std::vector<SensorSpec> &sensors,
                           std::vector<double> prior,
                           double lambda = 1e-2);

    /**
     * Reconstruct the full per-block state from one vector of sensor
     * readings (kelvin, absolute; same order as the sensors).
     */
    EstimatedState estimate(const std::vector<double> &readings) const;

    /** Block index each sensor reads. */
    const std::vector<std::size_t> &sensedBlocks() const
    {
        return sensed;
    }

  private:
    const StackModel &model;
    PowerInversion response;
    std::vector<std::size_t> sensed;
    std::vector<double> prior;
    double lambda;
};

} // namespace irtherm

#endif // IRTHERM_ANALYSIS_ESTIMATOR_HH
