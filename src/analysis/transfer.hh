/**
 * @file
 * Cross-package thermal transfer (the paper's proposed future work).
 *
 * "It could be useful to ascertain the thermal response of a chip
 * with air-cooled heatsink based on the IR measurements from an
 * oil-cooled bare silicon die. Certain factors such as the
 * temperature dependency of leakage power ... may make such a
 * derivation more complicated." (Sec. 6)
 *
 * PackageTransfer implements that derivation: invert the measurement
 * rig's model to recover per-block powers from a measured map, then
 * push those powers through the deployment package's model. The
 * leakage complication is handled explicitly: leakage estimated at
 * rig temperatures is removed from the recovered powers, and
 * deployment leakage is re-added by fixed-point iteration at the
 * (different) deployment temperatures.
 */

#ifndef IRTHERM_ANALYSIS_TRANSFER_HH
#define IRTHERM_ANALYSIS_TRANSFER_HH

#include <cstddef>
#include <vector>

#include "analysis/inversion.hh"
#include "core/stack_model.hh"
#include "power/wattch_model.hh"

namespace irtherm
{

/** Options for the rig-to-deployment transfer. */
struct TransferOptions
{
    /**
     * When set, the transfer separates temperature-dependent leakage
     * from the recovered powers and re-evaluates it at deployment
     * temperatures. Unit names must match the floorplan blocks.
     */
    const WattchPowerModel *leakageModel = nullptr;
    /** Fixed-point iterations for deployment leakage. */
    std::size_t leakageIterations = 5;
};

/**
 * Derive deployment-package temperatures from measurement-rig
 * temperatures of the same die and workload.
 */
class PackageTransfer
{
  public:
    /**
     * @param rig        model of the measurement configuration
     *                   (e.g. OIL-SILICON with the rig's flow)
     * @param deployment model of the production package
     *                   (e.g. AIR-SINK)
     *
     * Both models must share the same floorplan block set.
     */
    PackageTransfer(const StackModel &rig, const StackModel &deployment,
                    const TransferOptions &opts = {});

    /**
     * Powers recovered from a rig measurement (dynamic-only when a
     * leakage model is configured; total otherwise).
     */
    std::vector<double>
    recoverPowers(const std::vector<double> &rig_temps) const;

    /**
     * Predicted deployment block temperatures (kelvin) for the
     * workload whose rig measurement is @p rig_temps.
     */
    std::vector<double>
    predictDeployment(const std::vector<double> &rig_temps) const;

  private:
    const StackModel &rig;
    const StackModel &deployment;
    TransferOptions opts;
    PowerInversion rigInversion;
    PowerInversion deploymentForward;

    /** Per-block leakage at the given block temperatures. */
    std::vector<double>
    leakageAt(const std::vector<double> &block_temps) const;
};

} // namespace irtherm

#endif // IRTHERM_ANALYSIS_TRANSFER_HH
