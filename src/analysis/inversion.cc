#include "analysis/inversion.hh"

#include "base/logging.hh"
#include "numeric/lu.hh"

namespace irtherm
{

PowerInversion::PowerInversion(const StackModel &model_)
    : model(model_),
      response(model_.floorplan().blockCount(),
               model_.floorplan().blockCount())
{
    const std::size_t nb = model.floorplan().blockCount();
    const double ambient = model.packageConfig().ambient;
    std::vector<double> unit(nb, 0.0);
    for (std::size_t j = 0; j < nb; ++j) {
        unit[j] = 1.0;
        const std::vector<double> temps =
            model.steadyBlockTemperatures(unit);
        for (std::size_t i = 0; i < nb; ++i)
            response(i, j) = temps[i] - ambient;
        unit[j] = 0.0;
    }
}

std::vector<double>
PowerInversion::estimatePowers(
    const std::vector<double> &block_temps) const
{
    const std::size_t nb = response.rows();
    if (block_temps.size() != nb)
        fatal("estimatePowers: temperature vector size mismatch");

    const double ambient = model.packageConfig().ambient;
    std::vector<double> rise(nb);
    for (std::size_t i = 0; i < nb; ++i)
        rise[i] = block_temps[i] - ambient;

    // Normal equations R^T R p = R^T rise (R is square and well
    // conditioned for block-level inversion, but the least-squares
    // form also covers future rectangular variants).
    const DenseMatrix rt = response.transposed();
    const DenseMatrix rtr = rt.multiply(response);
    const std::vector<double> rhs = rt.multiply(rise);
    LuDecomposition lu(rtr);
    return lu.solve(rhs);
}

std::vector<double>
PowerInversion::predictTemperatures(
    const std::vector<double> &block_powers) const
{
    if (block_powers.size() != response.cols())
        fatal("predictTemperatures: power vector size mismatch");
    std::vector<double> t = response.multiply(block_powers);
    const double ambient = model.packageConfig().ambient;
    for (double &v : t)
        v += ambient;
    return t;
}

} // namespace irtherm
