#include "analysis/estimator.hh"

#include "base/logging.hh"
#include "numeric/dense_matrix.hh"
#include "numeric/lu.hh"

namespace irtherm
{

namespace
{

/** Block containing a point; fatal() when outside every block. */
std::size_t
blockAt(const Floorplan &fp, double x, double y)
{
    for (std::size_t b = 0; b < fp.blockCount(); ++b) {
        const Block &blk = fp.block(b);
        if (x >= blk.x && x < blk.right() && y >= blk.y &&
            y < blk.top()) {
            return b;
        }
    }
    fatal("ModelAssistedEstimator: sensor at (", x, ",", y,
          ") is outside the die");
}

} // namespace

ModelAssistedEstimator::ModelAssistedEstimator(
    const StackModel &model_, const std::vector<SensorSpec> &sensors,
    std::vector<double> prior_, double lambda_)
    : model(model_), response(model_), prior(std::move(prior_)),
      lambda(lambda_)
{
    if (sensors.empty())
        fatal("ModelAssistedEstimator: no sensors");
    if (prior.size() != model.floorplan().blockCount())
        fatal("ModelAssistedEstimator: prior size mismatch");
    if (lambda <= 0.0)
        fatal("ModelAssistedEstimator: lambda must be positive");
    for (const SensorSpec &s : sensors)
        sensed.push_back(blockAt(model.floorplan(), s.x, s.y));
}

EstimatedState
ModelAssistedEstimator::estimate(
    const std::vector<double> &readings) const
{
    if (readings.size() != sensed.size())
        fatal("ModelAssistedEstimator: reading count mismatch");

    const std::size_t nb = model.floorplan().blockCount();
    const std::size_t ns = sensed.size();
    const double ambient = model.packageConfig().ambient;
    const DenseMatrix &r = response.responseMatrix();

    // Normal equations of the regularized problem:
    //   (A^T A + lambda I) p = A^T y + lambda p_prior
    // with A = S R (the sensed rows of the response matrix).
    DenseMatrix ata(nb, nb);
    std::vector<double> rhs(nb, 0.0);
    for (std::size_t s = 0; s < ns; ++s) {
        const std::size_t row = sensed[s];
        const double y = readings[s] - ambient;
        for (std::size_t i = 0; i < nb; ++i) {
            rhs[i] += r(row, i) * y;
            for (std::size_t j = 0; j < nb; ++j)
                ata(i, j) += r(row, i) * r(row, j);
        }
    }
    for (std::size_t i = 0; i < nb; ++i) {
        ata(i, i) += lambda;
        rhs[i] += lambda * prior[i];
    }

    EstimatedState out;
    LuDecomposition lu(ata);
    out.blockPowers = lu.solve(rhs);
    out.blockTemperatures =
        response.predictTemperatures(out.blockPowers);
    return out;
}

} // namespace irtherm
