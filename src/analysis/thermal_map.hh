/**
 * @file
 * 2-D silicon thermal maps with CSV and PPM export.
 *
 * The paper's Figs. 4 and 10 are steady-state thermal maps; these
 * helpers turn a grid-mode StackModel solution into files a plotting
 * tool (or an image viewer, via the false-color PPM) can consume.
 */

#ifndef IRTHERM_ANALYSIS_THERMAL_MAP_HH
#define IRTHERM_ANALYSIS_THERMAL_MAP_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/stack_model.hh"

namespace irtherm
{

/** A regular 2-D temperature field over the die. */
struct ThermalMap
{
    std::size_t nx = 0;
    std::size_t ny = 0;
    double width = 0.0;  ///< die extent (m)
    double height = 0.0;
    std::vector<double> temps; ///< row-major, kelvin

    double maxTemp() const;
    double minTemp() const;
    double meanTemp() const;
    /** Across-die temperature difference max - min (the paper's dT). */
    double gradient() const { return maxTemp() - minTemp(); }

    /** Location (x, y) of the hottest cell (m). */
    std::pair<double, double> hottestLocation() const;

    /** Write x, y, celsius rows. */
    void writeCsv(std::ostream &out) const;

    /**
     * Write a false-colour (blue -> red) PPM image; the colour scale
     * spans [lo, hi] kelvin, or the map's own range when lo >= hi.
     */
    void writePpm(std::ostream &out, double lo = 0.0,
                  double hi = 0.0) const;

    /** Extract the silicon map of a grid-mode model solution. */
    static ThermalMap fromModel(const StackModel &model,
                                const std::vector<double> &node_temps);

    /**
     * Render the map as ASCII shading (coolest '.' to hottest '@'),
     * resampled to roughly @p columns terminal columns. Rows run
     * top-of-die first. Handy for CLI/example output without an
     * image viewer.
     */
    std::string renderAscii(std::size_t columns = 48) const;
};

} // namespace irtherm

#endif // IRTHERM_ANALYSIS_THERMAL_MAP_HH
