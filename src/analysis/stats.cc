#include "analysis/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace irtherm
{

Summary
summarize(const std::vector<double> &values)
{
    if (values.empty())
        fatal("summarize: empty sample");
    Summary s;
    s.min = values.front();
    s.max = values.front();
    double acc = 0.0;
    for (double v : values) {
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
        acc += v;
    }
    s.mean = acc / static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values)
        var += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(var / static_cast<double>(values.size()));
    return s;
}

double
percentile(std::vector<double> values, double pct)
{
    if (values.empty())
        fatal("percentile: empty sample");
    if (pct < 0.0 || pct > 100.0)
        fatal("percentile: pct out of range");
    std::sort(values.begin(), values.end());
    const double pos =
        pct / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double f = pos - std::floor(pos);
    return values[lo] * (1.0 - f) + values[hi] * f;
}

double
maxRate(const std::vector<double> &values, double dt)
{
    if (values.size() < 2)
        fatal("maxRate: need at least two samples");
    if (dt <= 0.0)
        fatal("maxRate: non-positive dt");
    double rate = 0.0;
    for (std::size_t i = 1; i < values.size(); ++i)
        rate = std::max(rate, std::abs(values[i] - values[i - 1]) / dt);
    return rate;
}

double
rmsDifference(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.empty())
        fatal("rmsDifference: size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc / static_cast<double>(a.size()));
}

double
maxAbsDifference(const std::vector<double> &a,
                 const std::vector<double> &b)
{
    if (a.size() != b.size() || a.empty())
        fatal("maxAbsDifference: size mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

} // namespace irtherm
