#include "fabric/result_cache.hh"

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "base/errors.hh"
#include "base/fault_injection.hh"
#include "base/logging.hh"
#include "obs/metrics.hh"

namespace irtherm::fabric
{

ResultCache::ResultCache(const std::string &dir) : dir_(dir)
{
    if (dir_.empty())
        configError("fabric: cache directory must not be empty");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        ioError("fabric: cannot create cache directory '", dir_,
                "': ", ec.message());
}

std::string
ResultCache::entryPath(const std::string &hash) const
{
    return (std::filesystem::path(dir_) / (hash + ".json")).string();
}

bool
ResultCache::lookup(const std::string &hash,
                    sweep::JobResult &out) const
{
    const std::string path = entryPath(hash);
    std::ifstream in(path);
    if (!in) {
        ++misses_;
        return false;
    }
    std::string line;
    std::getline(in, line);
    // Injected bit rot on the read path: mangle the entry so the
    // normal corrupt-entry handling below (evict + miss) runs — a
    // damaged entry must never be served as a result.
    if (FaultInjector::global().shouldFire(faultpoint::CacheCorrupt,
                                           hash)) {
        for (std::size_t i = 1; i < line.size(); i += 7)
            line[i] = '#';
    }
    try {
        sweep::JobResult r = sweep::JobResult::fromJsonLine(
            line, "cache entry '" + path + "'");
        if (r.hash != hash || r.status != sweep::JobStatus::Ok)
            configError("cache entry '", path,
                        "': hash mismatch or non-ok result");
        out = std::move(r);
    } catch (const FatalError &e) {
        warn("fabric: evicting corrupt cache entry '", path, "' (",
             e.what(), ")");
        in.close();
        std::error_code ec;
        std::filesystem::remove(path, ec);
        ++misses_;
        return false;
    }
    ++hits_;
    obs::MetricsRegistry::global()
        .counter("fabric.cache.hits")
        .add();
    return true;
}

void
ResultCache::store(const sweep::JobResult &result) const
{
    if (result.status != sweep::JobStatus::Ok || result.hash.empty())
        return;
    const std::string path = entryPath(result.hash);
    // Per-process temp name: two workers storing the same hash must
    // not interleave writes into one temp file. The renames race, but
    // toward identical content.
    const std::string tmp =
        path + ".tmp" + std::to_string(::getpid());
    {
        std::ofstream f(tmp, std::ios::trunc);
        if (!f)
            ioError("fabric: cannot write cache entry '", tmp, "'");
        f << result.toJsonLine() << "\n";
        f.flush();
        if (!f)
            ioError("fabric: short write to '", tmp, "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        ioError("fabric: cannot seal cache entry '", path, "'");
    }
    ++stores_;
    obs::MetricsRegistry::global()
        .counter("fabric.cache.stores")
        .add();
}

} // namespace irtherm::fabric
