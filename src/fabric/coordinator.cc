#include "fabric/coordinator.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "base/errors.hh"
#include "base/fault_injection.hh"
#include "base/logging.hh"
#include "base/shutdown.hh"
#include "fabric/fleet.hh"
#include "fabric/lease_table.hh"
#include "fabric/result_cache.hh"
#include "obs/event_trace.hh"
#include "obs/export.hh"
#include "obs/http_server.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace_clock.hh"
#include "obs/trace_context.hh"
#include "sweep/dashboard.hh"
#include "sweep/json.hh"
#include "sweep/report.hh"
#include "sweep/status.hh"

namespace irtherm::fabric
{

namespace
{

using sweep::JobResult;
using sweep::JobStatus;
using sweep::JsonValue;
using sweep::ScenarioSpec;

obs::HttpResponse
jsonResponse(int status, const std::string &body)
{
    return obs::HttpResponse{status, "application/json", body + "\n"};
}

/** One job as the wire protocol carries it. */
std::string
jobToJson(const ScenarioSpec &spec)
{
    std::string out = "{\"hash\":\"" + spec.hashHex() +
                      "\",\"settings\":{";
    bool first = true;
    for (const auto &[key, value] : spec.settings()) {
        if (!first)
            out += ',';
        first = false;
        out += "\"" + obs::jsonEscape(key) + "\":\"" +
               obs::jsonEscape(value) + "\"";
    }
    out += "}}";
    return out;
}

std::string
requireString(const JsonValue &doc, const char *key,
              const std::string &context)
{
    const JsonValue *v = doc.find(key);
    if (v == nullptr || !v->isString())
        configError(context, ": '", key, "' must be a string");
    return v->text;
}

} // namespace

CoordinatorSummary
runCoordinator(const sweep::SweepPlan &plan,
               const CoordinatorOptions &opts)
{
    auto &reg = obs::MetricsRegistry::global();
    obs::ScopedTimer batchTimer(reg.timer("sweep.batch_time"));
    if (!opts.fleetTraceOut.empty())
        obs::SpanRecorder::global().setEnabled(true);
    obs::SpanRecorder::setThreadLabel("coordinator");
    obs::ScopedSpan batchSpan("fabric.coordinate");
    batchSpan.attr("plan", plan.name());

    // The sweep's trace id: every lease grant propagates it, every
    // shipped span batch merges under it, logs correlate by it.
    const std::string traceId = obs::mintTraceId();
    obs::setProcessTraceContext(
        {traceId, obs::SpanRecorder::currentSpanId()});

    CoordinatorSummary out;
    out.traceId = traceId;
    sweep::SweepSummary &sum = out.sweep;
    sum.outDir = opts.outDir;

    const std::vector<ScenarioSpec> jobs = plan.expand();
    sum.total = jobs.size();
    reg.gauge("sweep.plan.jobs").set(static_cast<double>(sum.total));

    sweep::ResultStoreOptions storeOptions;
    storeOptions.segmentJobs = opts.segmentJobs;
    sweep::ResultStore store(opts.outDir, storeOptions);
    sum.journalPath = store.journalPath();
    if (opts.resume) {
        const std::size_t journaled = store.loadJournal();
        sum.quarantined = store.quarantined();
        sum.quarantinedSegments = store.quarantinedSegments();
        IRTHERM_EVENT("sweep.resume", {"plan", plan.name()},
                      {"journaled", journaled},
                      {"quarantined", sum.quarantined},
                      {"quarantined_segments",
                       sum.quarantinedSegments});
    }

    std::unique_ptr<ResultCache> cache;
    if (!opts.cacheDir.empty())
        cache = std::make_unique<ResultCache>(opts.cacheDir);

    // Queue construction mirrors runSweep exactly: skip journaled
    // hashes, collapse duplicates, answer from the shared cache.
    std::vector<const ScenarioSpec *> pending;
    std::set<std::string> queued;
    const auto attachAxes = [&plan](JobResult &r,
                                    const ScenarioSpec &spec) {
        r.axisValues.clear();
        for (const sweep::SweepAxis &axis : plan.axes()) {
            if (const std::string *v = spec.find(axis.key))
                r.axisValues.emplace_back(axis.key, *v);
        }
    };
    for (const ScenarioSpec &spec : jobs) {
        const std::string hash = spec.hashHex();
        if (store.has(hash)) {
            ++sum.cached;
            reg.counter("sweep.jobs.cached").add();
            continue;
        }
        if (!queued.insert(hash).second) {
            ++sum.duplicates;
            reg.counter("sweep.jobs.duplicate").add();
            continue;
        }
        JobResult cachedResult;
        if (cache && cache->lookup(hash, cachedResult)) {
            attachAxes(cachedResult, spec);
            store.add(cachedResult);
            ++sum.sharedCacheHits;
            reg.counter("sweep.shared_cache.hits").add();
            continue;
        }
        pending.push_back(&spec);
    }

    std::map<std::string, std::size_t> indexByHash;
    for (std::size_t i = 0; i < pending.size(); ++i)
        indexByHash[pending[i]->hashHex()] = i;

    LeaseTable table(pending.size(), opts.leaseTtlSeconds);
    sweep::SweepStatusBoard board;
    board.begin(plan.name(), sum.total, pending.size(), sum.cached,
                0);

    IRTHERM_EVENT("fabric.coordinate.start", {"plan", plan.name()},
                  {"jobs", sum.total}, {"pending", pending.size()},
                  {"cached", sum.cached},
                  {"shared_cache_hits", sum.sharedCacheHits});

    // Handler-shared mutable state. Handlers run on the one listener
    // thread, but the main loop reads the summary too.
    std::mutex mu;

    // Fleet observability: heartbeats + federated snapshots, shipped
    // span batches, and per-lease span ids minted from a counter in
    // their own id range (clear of the local recorder's small ids).
    FleetBoard fleet;
    FleetTraceStore traceStore;
    std::atomic<std::uint64_t> nextLeaseSpan{0x1000000000000000ull};
    const double suspectAfter =
        opts.suspectAfterSeconds > 0.0
            ? opts.suspectAfterSeconds
            : std::max(2.5 * opts.leaseTtlSeconds, 5.0);

    obs::HttpServer server;
    // Span batches are bigger than lease traffic; one batch of ~1024
    // spans with attrs needs more than the 256 KiB default.
    server.setMaxBodyBytes(1 << 20);
    if (opts.admitRatePerSecond > 0.0)
        server.limitRequestRate(opts.admitRatePerSecond,
                                opts.admitBurst);

    const auto fleetJson = [&] {
        return fleet.fleetJson(table.workerLeases(), traceId,
                               traceStore.size(),
                               traceStore.dropped());
    };

    server.route("/status", [&board, &fleetJson] {
        // Splice the fleet board into the status document so the
        // dashboard needs only its existing /status poll.
        std::string body = board.statusJson();
        const std::size_t brace = body.rfind('}');
        if (brace != std::string::npos)
            body.insert(brace, ",\"fleet\":" + fleetJson());
        return jsonResponse(200, body);
    });
    server.route("/metrics", [&reg, &fleet, &table] {
        return obs::HttpResponse{
            200, "text/plain; version=0.0.4; charset=utf-8",
            obs::metricsToPrometheus(reg) +
                fleet.prometheusText(table.workerLeases())};
    });
    server.route("/fleet", [&fleetJson] {
        return jsonResponse(200, fleetJson());
    });
    server.route("/trace", [&traceStore, &traceId] {
        return obs::HttpResponse{
            200, "application/json",
            traceStore.mergedTraceJson(obs::SpanRecorder::global(),
                                       &obs::EventTrace::global(),
                                       traceId)};
    });
    server.route("/healthz", [] {
        return obs::HttpResponse{200, "text/plain; charset=utf-8",
                                 "ok\n"};
    });
    server.route("/aggregates", [&store] {
        return jsonResponse(200, store.aggregatesJson());
    });
    server.route("/dashboard", [] {
        return obs::HttpResponse{200, "text/html; charset=utf-8",
                                 sweep::dashboardHtml()};
    });

    server.route("POST", "/lease", [&](const obs::HttpRequest &req) {
        std::string worker;
        std::size_t maxJobs = opts.leaseJobs;
        try {
            const JsonValue doc =
                sweep::parseJson(req.body, "POST /lease");
            worker = requireString(doc, "worker", "POST /lease");
            if (const JsonValue *v = doc.find("max_jobs")) {
                if (v->isNumber() && v->number >= 1)
                    maxJobs = std::min(
                        maxJobs,
                        static_cast<std::size_t>(v->number));
            }
        } catch (const FatalError &e) {
            return jsonResponse(
                400, std::string("{\"error\":\"") +
                         obs::jsonEscape(e.what()) + "\"}");
        }
        // A draining coordinator grants nothing and tells the fleet
        // it is done, so workers exit instead of polling a corpse.
        const bool draining = shutdownRequested();
        LeaseGrant grant;
        if (!draining)
            grant = table.lease(worker, maxJobs);
        board.setWorkers(table.workersSeen());
        fleet.heartbeat(worker);
        const std::string wireCtx = obs::formatTraceContext(
            {traceId,
             nextLeaseSpan.fetch_add(1, std::memory_order_relaxed)});
        std::string body = "{\"token\":\"" + grant.token +
                           "\",\"trace\":\"" + wireCtx +
                           "\",\"ttl_s\":" +
                           std::to_string(grant.ttlSeconds) +
                           ",\"done\":";
        body += (draining || table.allComplete()) ? "true" : "false";
        body += ",\"jobs\":[";
        bool first = true;
        for (const std::size_t i : grant.jobs) {
            if (!first)
                body += ',';
            first = false;
            body += jobToJson(*pending[i]);
        }
        body += "]}";
        if (!grant.jobs.empty()) {
            IRTHERM_EVENT("fabric.lease.granted",
                          {"token", grant.token}, {"worker", worker},
                          {"jobs", grant.jobs.size()});
        }
        obs::HttpResponse resp = jsonResponse(200, body);
        resp.headers.emplace_back(obs::kTraceHeaderName, wireCtx);
        return resp;
    });

    // A renew/complete body optionally names its worker and carries a
    // metrics snapshot — both are observability, so both are lenient:
    // absent members just skip the board update.
    const auto boardUpdate = [&fleet](const JsonValue &doc) {
        const JsonValue *w = doc.find("worker");
        if (w == nullptr || !w->isString() || w->text.empty())
            return;
        if (const JsonValue *m = doc.find("metrics"))
            fleet.ingest(w->text,
                         WorkerMetricsSnapshot::fromJson(*m));
        else
            fleet.heartbeat(w->text);
    };

    server.route("POST", "/renew", [&](const obs::HttpRequest &req) {
        std::string token;
        try {
            const JsonValue doc =
                sweep::parseJson(req.body, "POST /renew");
            token = requireString(doc, "token", "POST /renew");
            boardUpdate(doc);
        } catch (const FatalError &e) {
            return jsonResponse(
                400, std::string("{\"error\":\"") +
                         obs::jsonEscape(e.what()) + "\"}");
        }
        // Injected lease loss: the coordinator "forgets" the lease —
        // the holder must re-lease, and its jobs go back to the
        // queue. Any completes it still sends are first-wins.
        if (FaultInjector::global().shouldFire(faultpoint::LeaseLost, token)) {
            table.expireToken(token);
            warn("fabric: injected lease.lost for ", token);
            return jsonResponse(410, "{\"ok\":false}");
        }
        if (!table.renew(token))
            return jsonResponse(410, "{\"ok\":false}");
        return jsonResponse(
            200, "{\"ok\":true,\"ttl_s\":" +
                     std::to_string(opts.leaseTtlSeconds) + "}");
    });

    server.route("POST", "/complete", [&](const obs::HttpRequest &req) {
        std::size_t accepted = 0;
        std::size_t duplicates = 0;
        std::size_t unknown = 0;
        try {
            const JsonValue doc =
                sweep::parseJson(req.body, "POST /complete");
            const std::string token =
                requireString(doc, "token", "POST /complete");
            boardUpdate(doc);
            const JsonValue *results = doc.find("results");
            if (results == nullptr || !results->isArray())
                configError(
                    "POST /complete: 'results' must be an array");
            for (const JsonValue &entry : results->items) {
                JobResult r =
                    JobResult::fromJson(entry, "POST /complete");
                const auto it = indexByHash.find(r.hash);
                if (it == indexByHash.end()) {
                    ++unknown;
                    continue;
                }
                const CompleteOutcome outcome =
                    table.complete(token, it->second);
                if (outcome != CompleteOutcome::Accepted) {
                    ++duplicates;
                    continue;
                }
                const ScenarioSpec &spec = *pending[it->second];
                attachAxes(r, spec);
                // Fabric provenance: how contested was this job's
                // lease before this result landed?
                r.leaseExpiries = table.jobExpiries(it->second);
                const std::uint64_t grants =
                    table.jobGrants(it->second);
                r.reLeases = grants > 0 ? grants - 1 : 0;
                store.add(r);
                if (cache)
                    cache->store(r);
                board.jobFinished(r.status);
                reg.counter("sweep.jobs.executed").add();
                ++accepted;
                std::lock_guard<std::mutex> lock(mu);
                ++sum.executed;
                switch (r.status) {
                  case JobStatus::Ok:
                    ++sum.ok;
                    reg.counter("sweep.jobs.ok").add();
                    break;
                  case JobStatus::Failed:
                    ++sum.failed;
                    reg.counter("sweep.jobs.failed").add();
                    warn("fabric: job '", r.name,
                         "' failed on worker '", r.worker,
                         "': ", r.error);
                    break;
                  case JobStatus::Timeout:
                    ++sum.timedOut;
                    reg.counter("sweep.jobs.timeout").add();
                    break;
                  case JobStatus::Hung:
                    ++sum.hung;
                    reg.counter("resilience.jobs.hung").add();
                    break;
                }
                if (r.warmStarted)
                    ++sum.warmStarted;
                if (r.impulseCacheHit)
                    ++sum.impulseCacheHits;
                if (r.attempts > 1)
                    ++sum.retried;
                if (r.fallbackTier > 0)
                    ++sum.fallbacks;
            }
        } catch (const FatalError &e) {
            return jsonResponse(
                400, std::string("{\"error\":\"") +
                         obs::jsonEscape(e.what()) + "\"}");
        }
        std::string body =
            "{\"accepted\":" + std::to_string(accepted) +
            ",\"duplicates\":" + std::to_string(duplicates) +
            ",\"unknown\":" + std::to_string(unknown) + ",\"done\":";
        body += table.allComplete() ? "true" : "false";
        body += "}";
        return jsonResponse(200, body);
    });

    server.route("POST", "/spans", [&](const obs::HttpRequest &req) {
        std::string worker;
        std::size_t acceptedSpans = 0;
        try {
            acceptedSpans = traceStore.ingestBatch(
                req.body, obs::wallClockStartUnixSeconds(), &worker);
        } catch (const FatalError &e) {
            return jsonResponse(
                400, std::string("{\"error\":\"") +
                         obs::jsonEscape(e.what()) + "\"}");
        }
        fleet.heartbeat(worker);
        return jsonResponse(
            200, "{\"accepted\":" + std::to_string(acceptedSpans) +
                     ",\"dropped\":" +
                     std::to_string(traceStore.dropped()) + "}");
    });

    server.start(opts.port, opts.bindAddress);
    inform("fabric: coordinating '", plan.name(), "' (",
           pending.size(), " jobs) on ", opts.bindAddress, ":",
           server.port(), " — lease ttl ", opts.leaseTtlSeconds, " s");
    if (opts.onServerStart)
        opts.onServerStart(server.port());

    // The listener thread does all the work; this thread just waits
    // for the fleet to drain the queue (or for a shutdown signal),
    // sweeping for gone-quiet workers about once a second.
    int ticks = 0;
    const auto sweepForSuspects = [&] {
        for (const std::string &w : fleet.sweepSuspects(suspectAfter)) {
            ++out.suspectEvents;
            IRTHERM_EVENT("worker.suspect", {"worker", w},
                          {"threshold_s", suspectAfter});
            warn("fabric: worker '", w, "' silent past ",
                 suspectAfter, " s — marking suspect");
        }
    };
    while (!table.allComplete() && !shutdownRequested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (++ticks % 50 == 0)
            sweepForSuspects();
    }
    sweepForSuspects();

    // Stop accepting before finalizing: no /complete can race the
    // seal-and-checkpoint below.
    server.stop();
    out.requestsShed = server.shedCount();
    if (shutdownRequested() && !table.allComplete())
        inform("fabric: shutdown requested; drained with ",
               table.remaining(),
               " jobs unfinished (journal sealed, checkpoint "
               "written; resume to continue)");

    store.finalize();

    if (opts.writeReports) {
        const std::filesystem::path dir(opts.outDir);
        sum.csvPath = (dir / "report.csv").string();
        sum.jsonPath = (dir / "report.json").string();
        std::ofstream csv(sum.csvPath);
        if (!csv)
            fatal("fabric: cannot write ", sum.csvPath);
        writeSweepCsv(csv, plan, jobs, store);
        std::ofstream json(sum.jsonPath);
        if (!json)
            fatal("fabric: cannot write ", sum.jsonPath);
        writeSweepJson(json, plan, jobs, store, sum);
    }

    out.workersSeen = table.workersSeen();
    out.leasesGranted = table.leasesGranted();
    out.leasesExpired = table.leasesExpired();
    out.duplicateCompletes = table.duplicateCompletes();
    out.spansMerged = traceStore.received();
    out.spansDropped = traceStore.dropped();

    if (!opts.fleetTraceOut.empty()) {
        std::ofstream trace(opts.fleetTraceOut);
        if (!trace)
            fatal("fabric: cannot write ", opts.fleetTraceOut);
        trace << traceStore.mergedTraceJson(
            obs::SpanRecorder::global(), &obs::EventTrace::global(),
            traceId);
        inform("fabric: fleet trace (", out.spansMerged,
               " worker spans, trace ", traceId, ") -> ",
               opts.fleetTraceOut);
    }

    IRTHERM_EVENT("fabric.coordinate.done", {"plan", plan.name()},
                  {"executed", sum.executed}, {"ok", sum.ok},
                  {"failed", sum.failed},
                  {"workers", out.workersSeen},
                  {"leases", out.leasesGranted},
                  {"expired", out.leasesExpired},
                  {"duplicates", out.duplicateCompletes},
                  {"shed", out.requestsShed});
    batchSpan.attr("executed", sum.executed)
        .attr("workers", out.workersSeen)
        .attr("leases_expired", out.leasesExpired);
    return out;
}

} // namespace irtherm::fabric
