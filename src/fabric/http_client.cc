#include "fabric/http_client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "base/errors.hh"

namespace irtherm::fabric
{

namespace
{

/** RAII socket close. */
struct Fd
{
    int fd = -1;
    ~Fd()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace

std::string
HttpReply::header(const std::string &name) const
{
    const auto it = headers.find(lower(name));
    return it == headers.end() ? "" : it->second;
}

HttpReply
httpRequest(const std::string &host, int port,
            const std::string &method, const std::string &path,
            const std::string &requestBody, double timeoutSeconds,
            const std::vector<std::pair<std::string, std::string>>
                &extraHeaders)
{
    Fd sock;
    sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (sock.fd < 0)
        ioError("http: socket(): ", std::strerror(errno));

    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeoutSeconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeoutSeconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(sock.fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(sock.fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        ioError("http: bad host address '", host, "'");
    if (::connect(sock.fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        ioError("http: connect(", host, ":", port,
                "): ", std::strerror(errno));

    std::string req = method + " " + path + " HTTP/1.1\r\nHost: " +
                      host + "\r\nContent-Length: " +
                      std::to_string(requestBody.size()) +
                      "\r\nConnection: close\r\n";
    for (const auto &[name, value] : extraHeaders)
        req += name + ": " + value + "\r\n";
    req += "\r\n" + requestBody;
    std::size_t sent = 0;
    while (sent < req.size()) {
        const ssize_t n = ::send(sock.fd, req.data() + sent,
                                 req.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            ioError("http: send(", host, ":", port,
                    "): ", std::strerror(errno));
        sent += static_cast<std::size_t>(n);
    }

    std::string raw;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(sock.fd, buf, sizeof(buf), 0);
        if (n < 0)
            ioError("http: recv(", host, ":", port,
                    "): ", std::strerror(errno));
        if (n == 0)
            break; // server closed: response complete
        raw.append(buf, static_cast<std::size_t>(n));
    }

    const std::size_t headerEnd = raw.find("\r\n\r\n");
    if (headerEnd == std::string::npos)
        ioError("http: malformed response from ", host, ":", port);

    HttpReply reply;
    const std::size_t lineEnd = raw.find("\r\n");
    const std::string statusLine = raw.substr(0, lineEnd);
    // "HTTP/1.1 200 OK" — the code sits after the first space.
    const std::size_t sp = statusLine.find(' ');
    if (sp == std::string::npos)
        ioError("http: bad status line '", statusLine, "'");
    reply.status = std::atoi(statusLine.c_str() + sp + 1);

    std::size_t pos = lineEnd + 2;
    while (pos < headerEnd) {
        std::size_t end = raw.find("\r\n", pos);
        if (end == std::string::npos || end > headerEnd)
            end = headerEnd;
        const std::string line = raw.substr(pos, end - pos);
        pos = end + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string value = line.substr(colon + 1);
        const std::size_t first = value.find_first_not_of(" \t");
        value = first == std::string::npos ? "" : value.substr(first);
        reply.headers[lower(line.substr(0, colon))] = value;
    }
    reply.body = raw.substr(headerEnd + 4);
    return reply;
}

} // namespace irtherm::fabric
