/**
 * @file
 * Sweep-fabric coordinator: the process that owns the plan, the
 * journal, and the aggregates, and hands out job leases over HTTP.
 *
 * runCoordinator() expands the plan exactly like runSweep(), but
 * instead of executing jobs on local threads it serves them to
 * workers (`irtherm_cli worker --connect`) through three POST
 * endpoints on the embedded obs/http_server:
 *
 *     POST /lease     {"worker": W, "max_jobs": N}
 *                  -> {"token": T, "ttl_s": S, "done": B,
 *                      "jobs": [{"hash": H, "settings": {...}}]}
 *     POST /renew     {"token": T} -> 200 {"ok": true, "ttl_s": S}
 *                                   | 410 (re-lease required)
 *     POST /complete  {"token": T, "worker": W, "results": [...]}
 *                  -> {"accepted": A, "duplicates": D, "done": B}
 *
 * plus the familiar read-only telemetry routes (/status, /metrics,
 * /healthz, /aggregates, /dashboard). Jobs travel as their full
 * textual ScenarioSpec, so a worker needs nothing but the
 * coordinator's address — no plan file, no shared filesystem.
 *
 * Fleet observability (see fabric/fleet.hh): the coordinator mints a
 * per-sweep trace id; every lease grant carries a propagated trace
 * context ("trace": "<trace-id>-<lease-span-id>", echoed in the
 * X-Irtherm-Trace response header) that workers parent their span
 * trees under. Workers ship sealed span batches to `POST /spans`
 * (bounded, drop-counted) and piggyback metrics snapshots on
 * renew/complete; the coordinator merges spans into one
 * Perfetto-loadable Chrome trace (`GET /trace`, and
 * CoordinatorOptions::fleetTraceOut at exit), federates the
 * snapshots into `irtherm_fleet_*` series on /metrics, and serves
 * the fleet health board at `GET /fleet` (also inlined into
 * /status for the dashboard). A worker whose heartbeat goes silent
 * past the suspect threshold raises a `worker.suspect` event.
 *
 * Exactly-once journaling: the LeaseTable classifies every completed
 * report (first-wins); only Accepted results reach the ResultStore,
 * so a re-leased job finished by both its original and replacement
 * worker lands in the journal exactly once. Completed results are
 * also published to the shared content-addressed ResultCache (when
 * configured), and the queue is pre-filtered through it — repeated
 * sub-scenarios across plans are answered from cache, never
 * re-simulated.
 *
 * Backpressure: CoordinatorOptions::admitRatePerSecond arms the
 * server's token bucket; a flood of lease/complete traffic sheds to
 * 429 + Retry-After (workers back off and retry) instead of queueing
 * unboundedly behind the listener thread.
 *
 * SIGINT/SIGTERM (via base/shutdown) drains: in-flight leases are
 * told "done" on their next pull, the server stops, the journal
 * flushes, the open segment seals, and a final aggregates checkpoint
 * is written — a later `--resume` continues where the fleet stopped.
 */

#ifndef IRTHERM_FABRIC_COORDINATOR_HH
#define IRTHERM_FABRIC_COORDINATOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "sweep/plan.hh"
#include "sweep/runner.hh"

namespace irtherm::fabric
{

struct CoordinatorOptions
{
    /** Output directory: journal, segments, checkpoint, reports. */
    std::string outDir = "sweep_out";
    /** Listen port; 0 picks an ephemeral one. */
    int port = 0;
    std::string bindAddress = "127.0.0.1";
    /** Lease TTL: a worker silent this long forfeits its jobs. */
    double leaseTtlSeconds = 10.0;
    /** Max jobs per lease batch (clamps the worker's request). */
    std::size_t leaseJobs = 4;
    /** Skip scenarios already present in the journal. */
    bool resume = false;
    /** Completed jobs per sealed columnar segment (see runner.hh). */
    std::size_t segmentJobs = 2048;
    bool writeReports = true;
    /** Shared content-addressed result cache directory; "" = off. */
    std::string cacheDir;
    /** Admission control: requests/s through the token bucket; 0
     *  disarms. Shed requests get 429 + Retry-After. */
    double admitRatePerSecond = 0.0;
    double admitBurst = 64.0;
    /** Write the merged fleet Chrome trace here at exit; "" = off.
     *  Setting it also enables span recording in this process. */
    std::string fleetTraceOut;
    /** Heartbeat age (s) past which a worker turns suspect; 0 picks
     *  max(2.5 x lease TTL, 5 s). */
    double suspectAfterSeconds = 0.0;
    /** Called with the bound port once the server is listening. */
    std::function<void(int)> onServerStart;
};

/** What a coordinated sweep did, plus fabric-level accounting. */
struct CoordinatorSummary
{
    sweep::SweepSummary sweep;
    std::size_t workersSeen = 0;
    std::size_t leasesGranted = 0;
    std::size_t leasesExpired = 0;
    /** Completed reports dropped as duplicates (exactly-once). */
    std::size_t duplicateCompletes = 0;
    /** Requests shed with 429 by admission control. */
    std::uint64_t requestsShed = 0;
    /** The per-sweep trace id every lease propagated. */
    std::string traceId;
    /** Worker spans merged into the fleet trace. */
    std::uint64_t spansMerged = 0;
    /** Spans shed because the fleet trace store was full. */
    std::uint64_t spansDropped = 0;
    /** worker.suspect transitions raised. */
    std::size_t suspectEvents = 0;
};

/** Serve @p plan to workers until every job completes (or shutdown
 *  is requested), then finalize the journal and reports. */
CoordinatorSummary runCoordinator(const sweep::SweepPlan &plan,
                                  const CoordinatorOptions &opts);

} // namespace irtherm::fabric

#endif // IRTHERM_FABRIC_COORDINATOR_HH
