#include "fabric/fleet.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "base/errors.hh"
#include "obs/export.hh"
#include "obs/trace_clock.hh"
#include "obs/trace_context.hh"
#include "sweep/json.hh"

namespace irtherm::fabric
{

namespace
{

/** Shortest round-trippable decimal for a double (JSON-safe). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    char shortBuf[40];
    std::snprintf(shortBuf, sizeof(shortBuf), "%g", v);
    double back = 0.0;
    std::sscanf(shortBuf, "%lf", &back);
    return back == v ? shortBuf : buf;
}

std::uint64_t
u64At(const sweep::JsonValue &doc, const char *key)
{
    const sweep::JsonValue *v = doc.find(key);
    if (v == nullptr || !v->isNumber() || v->number < 0.0)
        return 0;
    return static_cast<std::uint64_t>(v->number);
}

/** Prometheus label value escape: backslash, quote, newline. */
std::string
promLabel(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

std::string
WorkerMetricsSnapshot::toJson() const
{
    std::string out = "{";
    out += "\"executed\":" + std::to_string(executed);
    out += ",\"ok\":" + std::to_string(ok);
    out += ",\"failed\":" + std::to_string(failed);
    out += ",\"timed_out\":" + std::to_string(timedOut);
    out += ",\"hung\":" + std::to_string(hung);
    out += ",\"leases\":" + std::to_string(leases);
    out += ",\"renewals\":" + std::to_string(renewals);
    out += ",\"retries\":" + std::to_string(retries);
    out += ",\"fallbacks\":" + std::to_string(fallbacks);
    out += ",\"impulse_hits\":" + std::to_string(impulseHits);
    out += ",\"warm_starts\":" + std::to_string(warmStarts);
    out += ",\"spans_shipped\":" + std::to_string(spansShipped);
    out += ",\"spans_dropped\":" + std::to_string(spansDropped);
    out += ",\"cpu_s\":" + jsonNumber(cpuSeconds);
    out += "}";
    return out;
}

WorkerMetricsSnapshot
WorkerMetricsSnapshot::fromJson(const sweep::JsonValue &doc)
{
    WorkerMetricsSnapshot s;
    if (!doc.isObject())
        return s;
    s.executed = u64At(doc, "executed");
    s.ok = u64At(doc, "ok");
    s.failed = u64At(doc, "failed");
    s.timedOut = u64At(doc, "timed_out");
    s.hung = u64At(doc, "hung");
    s.leases = u64At(doc, "leases");
    s.renewals = u64At(doc, "renewals");
    s.retries = u64At(doc, "retries");
    s.fallbacks = u64At(doc, "fallbacks");
    s.impulseHits = u64At(doc, "impulse_hits");
    s.warmStarts = u64At(doc, "warm_starts");
    s.spansShipped = u64At(doc, "spans_shipped");
    s.spansDropped = u64At(doc, "spans_dropped");
    if (const sweep::JsonValue *v = doc.find("cpu_s")) {
        if (v->isNumber())
            s.cpuSeconds = v->number;
    }
    return s;
}

void
FleetBoard::stampLocked(Slot &slot)
{
    slot.lastSeen = obs::monotonicSeconds();
    ++slot.heartbeats;
    if (slot.suspect) {
        slot.suspect = false;
        ++slot.flaps;
    }
}

void
FleetBoard::heartbeat(const std::string &worker)
{
    std::lock_guard<std::mutex> lock(mu);
    stampLocked(slots[worker]);
}

void
FleetBoard::ingest(const std::string &worker,
                   const WorkerMetricsSnapshot &snap)
{
    std::lock_guard<std::mutex> lock(mu);
    Slot &slot = slots[worker];
    stampLocked(slot);
    slot.snap = snap;
    slot.window.emplace_back(slot.lastSeen, snap.executed);
    while (slot.window.size() > 16)
        slot.window.pop_front();
}

std::vector<std::string>
FleetBoard::sweepSuspects(double thresholdSeconds)
{
    const double now = obs::monotonicSeconds();
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> fresh;
    for (auto &[name, slot] : slots) {
        if (slot.suspect)
            continue;
        if (now - slot.lastSeen > thresholdSeconds) {
            slot.suspect = true;
            fresh.push_back(name);
        }
    }
    return fresh;
}

std::vector<FleetWorkerRow>
FleetBoard::rows(
    const std::map<std::string, LeaseTable::WorkerLeases> &leases)
    const
{
    const double now = obs::monotonicSeconds();
    std::lock_guard<std::mutex> lock(mu);
    std::vector<FleetWorkerRow> out;
    out.reserve(slots.size());
    for (const auto &[name, slot] : slots) {
        FleetWorkerRow row;
        row.name = name;
        row.heartbeatAgeSeconds = std::max(0.0, now - slot.lastSeen);
        row.heartbeats = slot.heartbeats;
        row.suspect = slot.suspect;
        row.flaps = slot.flaps;
        row.metrics = slot.snap;
        if (slot.window.size() >= 2) {
            const auto &first = slot.window.front();
            const auto &last = slot.window.back();
            const double dt = last.first - first.first;
            if (dt > 0.0 && last.second >= first.second) {
                row.jobsPerSecond =
                    static_cast<double>(last.second - first.second) /
                    dt;
            }
        }
        const auto it = leases.find(name);
        if (it != leases.end())
            row.leases = it->second;
        out.push_back(std::move(row));
    }
    return out;
}

std::string
FleetBoard::fleetJson(
    const std::map<std::string, LeaseTable::WorkerLeases> &leases,
    const std::string &traceId, std::uint64_t spansStored,
    std::uint64_t spansDroppedHere) const
{
    std::ostringstream os;
    os << "{\"schema\":\"irtherm.fleet.v1\""
       << ",\"trace_id\":\"" << obs::jsonEscape(traceId) << "\""
       << ",\"spans\":{\"stored\":" << spansStored
       << ",\"dropped\":" << spansDroppedHere << "}"
       << ",\"workers\":{";
    bool first = true;
    for (const FleetWorkerRow &row : rows(leases)) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << obs::jsonEscape(row.name) << "\":{"
           << "\"heartbeat_age_s\":"
           << jsonNumber(row.heartbeatAgeSeconds)
           << ",\"heartbeats\":" << row.heartbeats
           << ",\"suspect\":" << (row.suspect ? "true" : "false")
           << ",\"flaps\":" << row.flaps
           << ",\"jobs_per_s\":" << jsonNumber(row.jobsPerSecond)
           << ",\"leases\":{\"granted\":" << row.leases.granted
           << ",\"expired\":" << row.leases.expired
           << ",\"live\":" << row.leases.liveLeases
           << ",\"live_jobs\":" << row.leases.liveJobs << "}"
           << ",\"metrics\":" << row.metrics.toJson() << "}";
    }
    os << "}}";
    return os.str();
}

std::string
FleetBoard::prometheusText(
    const std::map<std::string, LeaseTable::WorkerLeases> &leases)
    const
{
    const std::vector<FleetWorkerRow> all = rows(leases);

    // Cardinality cap: the first kMaxLabeledWorkers (map order, so
    // stable by name) keep their own label; the rest fold into one
    // "_other" row (sums; heartbeat age takes the max — the oldest
    // is the interesting one).
    std::vector<FleetWorkerRow> labeled;
    FleetWorkerRow other;
    other.name = "_other";
    bool haveOther = false;
    for (const FleetWorkerRow &row : all) {
        if (labeled.size() < kMaxLabeledWorkers) {
            labeled.push_back(row);
            continue;
        }
        haveOther = true;
        other.heartbeatAgeSeconds = std::max(
            other.heartbeatAgeSeconds, row.heartbeatAgeSeconds);
        other.suspect = other.suspect || row.suspect;
        other.jobsPerSecond += row.jobsPerSecond;
        other.metrics.executed += row.metrics.executed;
        other.metrics.failed += row.metrics.failed;
        other.metrics.retries += row.metrics.retries;
        other.metrics.fallbacks += row.metrics.fallbacks;
        other.metrics.impulseHits += row.metrics.impulseHits;
        other.leases.expired += row.leases.expired;
        other.leases.liveLeases += row.leases.liveLeases;
    }
    if (haveOther)
        labeled.push_back(other);

    std::ostringstream os;
    os << "# HELP irtherm_fleet_workers workers seen by the "
          "coordinator\n# TYPE irtherm_fleet_workers gauge\n"
       << "irtherm_fleet_workers " << all.size() << "\n";

    struct Family
    {
        const char *name;
        const char *type;
        const char *help;
        double (*value)(const FleetWorkerRow &);
    };
    static const Family kFamilies[] = {
        {"irtherm_fleet_jobs_total", "counter",
         "jobs executed per worker",
         [](const FleetWorkerRow &r) {
             return static_cast<double>(r.metrics.executed);
         }},
        {"irtherm_fleet_failed_total", "counter",
         "failed jobs per worker",
         [](const FleetWorkerRow &r) {
             return static_cast<double>(r.metrics.failed);
         }},
        {"irtherm_fleet_retries_total", "counter",
         "job retries per worker",
         [](const FleetWorkerRow &r) {
             return static_cast<double>(r.metrics.retries);
         }},
        {"irtherm_fleet_fallbacks_total", "counter",
         "solver fallback escalations per worker",
         [](const FleetWorkerRow &r) {
             return static_cast<double>(r.metrics.fallbacks);
         }},
        {"irtherm_fleet_cache_hits_total", "counter",
         "impulse-cache hits per worker",
         [](const FleetWorkerRow &r) {
             return static_cast<double>(r.metrics.impulseHits);
         }},
        {"irtherm_fleet_lease_expiries_total", "counter",
         "expired leases per worker",
         [](const FleetWorkerRow &r) {
             return static_cast<double>(r.leases.expired);
         }},
        {"irtherm_fleet_leases_live", "gauge",
         "live leases per worker",
         [](const FleetWorkerRow &r) {
             return static_cast<double>(r.leases.liveLeases);
         }},
        {"irtherm_fleet_heartbeat_age_seconds", "gauge",
         "seconds since each worker's last contact",
         [](const FleetWorkerRow &r) {
             return r.heartbeatAgeSeconds;
         }},
        {"irtherm_fleet_jobs_per_second", "gauge",
         "trailing job throughput per worker",
         [](const FleetWorkerRow &r) { return r.jobsPerSecond; }},
        {"irtherm_fleet_suspect", "gauge",
         "1 when the worker's heartbeat is overdue",
         [](const FleetWorkerRow &r) {
             return r.suspect ? 1.0 : 0.0;
         }},
    };
    for (const Family &fam : kFamilies) {
        os << "# HELP " << fam.name << " " << fam.help << "\n"
           << "# TYPE " << fam.name << " " << fam.type << "\n";
        for (const FleetWorkerRow &row : labeled) {
            os << fam.name << "{worker=\"" << promLabel(row.name)
               << "\"} " << jsonNumber(fam.value(row)) << "\n";
        }
    }
    return os.str();
}

std::size_t
FleetBoard::suspectCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::size_t n = 0;
    for (const auto &[name, slot] : slots)
        n += slot.suspect ? 1 : 0;
    return n;
}

FleetTraceStore::FleetTraceStore(std::size_t capacity) : cap(capacity)
{}

std::size_t
FleetTraceStore::ingestBatch(const std::string &body,
                             double coordEpochUnixSeconds,
                             std::string *workerOut)
{
    const sweep::JsonValue doc = sweep::parseJson(body, "/spans body");
    if (!doc.isObject())
        configError("/spans: body must be an object");
    const sweep::JsonValue &workerVal = doc.at("worker");
    if (!workerVal.isString() || workerVal.text.empty())
        configError("/spans: 'worker' must be a non-empty string");
    const std::string worker = workerVal.text;
    if (workerOut != nullptr)
        *workerOut = worker;

    double epochDelta = 0.0;
    if (const sweep::JsonValue *v = doc.find("wall_epoch_unix_s")) {
        if (v->isNumber())
            epochDelta = v->number - coordEpochUnixSeconds;
    }
    std::uint64_t ctxParent = 0;
    if (const sweep::JsonValue *v = doc.find("lease_span")) {
        if (v->isString())
            ctxParent = obs::parseSpanIdHex(v->text);
    }
    if (const sweep::JsonValue *v = doc.find("dropped")) {
        if (v->isNumber() && v->number > 0) {
            std::lock_guard<std::mutex> lock(mu);
            workerDroppedMax = std::max(
                workerDroppedMax,
                static_cast<std::uint64_t>(v->number));
        }
    }

    const sweep::JsonValue *list = doc.find("spans");
    if (list == nullptr || !list->isArray())
        return 0;

    std::size_t accepted = 0;
    std::lock_guard<std::mutex> lock(mu);
    std::vector<RemoteSpan> &dst = spans[worker];
    for (const sweep::JsonValue &s : list->items) {
        if (!s.isObject())
            continue;
        if (stored >= cap) {
            ++droppedCount;
            continue;
        }
        RemoteSpan r;
        r.id = u64At(s, "id");
        r.parentId = u64At(s, "parent");
        r.threadIndex = static_cast<std::uint32_t>(u64At(s, "tid"));
        r.depth = static_cast<std::uint32_t>(u64At(s, "depth"));
        if (const sweep::JsonValue *v = s.find("name")) {
            if (v->isString())
                r.name = v->text;
        }
        if (const sweep::JsonValue *v = s.find("start_s")) {
            if (v->isNumber())
                r.startSeconds = v->number + epochDelta;
        }
        if (const sweep::JsonValue *v = s.find("dur_s")) {
            if (v->isNumber())
                r.durationSeconds = v->number;
        }
        if (const sweep::JsonValue *attrs = s.find("attrs")) {
            if (attrs->isObject()) {
                std::string frag;
                for (const auto &[key, value] : attrs->members) {
                    frag += ",\"" + obs::jsonEscape(key) + "\":";
                    if (value.isNumber())
                        frag += jsonNumber(value.number);
                    else if (value.isBool())
                        frag += value.boolean ? "true" : "false";
                    else if (value.isString())
                        frag += "\"" + obs::jsonEscape(value.text) +
                                "\"";
                    else
                        frag += "null";
                }
                r.attrsJson = std::move(frag);
            }
        }
        if (r.parentId == 0)
            r.ctxParent = ctxParent;
        dst.push_back(std::move(r));
        ++stored;
        ++receivedCount;
        ++accepted;
    }
    return accepted;
}

std::uint64_t
FleetTraceStore::received() const
{
    std::lock_guard<std::mutex> lock(mu);
    return receivedCount;
}

std::uint64_t
FleetTraceStore::dropped() const
{
    std::lock_guard<std::mutex> lock(mu);
    return droppedCount;
}

std::uint64_t
FleetTraceStore::workerDropped() const
{
    std::lock_guard<std::mutex> lock(mu);
    return workerDroppedMax;
}

std::size_t
FleetTraceStore::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stored;
}

namespace
{

/** One renderable trace entry (mirrors obs/export's sort rules). */
struct TraceEntry
{
    double tsUs = 0.0;
    int phaseOrder = 0; ///< M=0, E=1, B=2, i=3
    int depthKey = 0;   ///< B: +depth, E: -depth
    std::string json;
};

void
appendSpanPair(std::vector<TraceEntry> &entries, int pid,
               std::uint32_t tid, std::uint64_t id,
               std::uint64_t parent, std::uint32_t depth,
               const std::string &name, double startSeconds,
               double durationSeconds, const std::string &attrsJson,
               const std::string &rootCtx)
{
    const double beginUs = startSeconds * 1e6;
    const double endUs = (startSeconds + durationSeconds) * 1e6;
    {
        std::ostringstream os;
        os << "{\"ph\":\"B\",\"name\":\"" << obs::jsonEscape(name)
           << "\",\"cat\":\"span\",\"pid\":" << pid
           << ",\"tid\":" << tid << ",\"ts\":" << jsonNumber(beginUs)
           << ",\"args\":{\"id\":" << id << ",\"parent\":" << parent
           << attrsJson << rootCtx << "}}";
        entries.push_back(
            {beginUs, 2, static_cast<int>(depth), os.str()});
    }
    {
        std::ostringstream os;
        os << "{\"ph\":\"E\",\"name\":\"" << obs::jsonEscape(name)
           << "\",\"cat\":\"span\",\"pid\":" << pid
           << ",\"tid\":" << tid << ",\"ts\":" << jsonNumber(endUs)
           << "}";
        entries.push_back(
            {endUs, 1, -static_cast<int>(depth), os.str()});
    }
}

void
appendProcessName(std::vector<TraceEntry> &entries, int pid,
                  const std::string &name)
{
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << obs::jsonEscape(name)
       << "\"}}";
    entries.push_back({0.0, 0, 0, os.str()});
}

void
appendThreadName(std::vector<TraceEntry> &entries, int pid,
                 std::uint32_t tid, const std::string &name)
{
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
       << obs::jsonEscape(name) << "\"}}";
    entries.push_back({0.0, 0, 0, os.str()});
}

} // namespace

std::string
FleetTraceStore::mergedTraceJson(const obs::SpanRecorder &local,
                                 const obs::EventTrace *overlay,
                                 const std::string &traceId) const
{
    std::vector<TraceEntry> entries;
    const std::string rootCtx =
        ",\"trace\":\"" + obs::jsonEscape(traceId) + "\"";

    // Coordinator: pid 1, its recorder's own thread tracks.
    appendProcessName(entries, 1, "coordinator");
    for (const auto &[index, label] : local.threadLabels()) {
        appendThreadName(entries, 1, index,
                         label.empty()
                             ? "thread " + std::to_string(index)
                             : label);
    }
    for (const obs::SpanRecord &s : local.snapshot()) {
        std::string attrs;
        for (const obs::EventField &f : s.attrs) {
            attrs += ",\"" + obs::jsonEscape(f.key) + "\":";
            if (f.numeric)
                attrs += jsonNumber(f.num);
            else
                attrs += "\"" + obs::jsonEscape(f.text) + "\"";
        }
        appendSpanPair(entries, 1, s.threadIndex, s.id, s.parentId,
                       s.depth, s.name, s.startSeconds,
                       s.durationSeconds, attrs,
                       s.parentId == 0 ? rootCtx : "");
    }
    if (overlay != nullptr) {
        for (const obs::TraceEvent &e : overlay->snapshot()) {
            const double tsUs = e.wallSeconds * 1e6;
            std::ostringstream os;
            os << "{\"ph\":\"i\",\"s\":\"p\",\"name\":\""
               << obs::jsonEscape(e.type)
               << "\",\"cat\":\"event\",\"pid\":1,\"tid\":0,"
               << "\"ts\":" << jsonNumber(tsUs) << ",\"args\":{";
            bool first = true;
            for (const obs::EventField &f : e.fields) {
                if (!first)
                    os << ",";
                first = false;
                os << "\"" << obs::jsonEscape(f.key) << "\":";
                if (f.numeric)
                    os << jsonNumber(f.num);
                else
                    os << "\"" << obs::jsonEscape(f.text) << "\"";
            }
            os << "}}";
            entries.push_back({tsUs, 3, 0, os.str()});
        }
    }

    // Workers: one pid (= one Perfetto track group) each, stable by
    // name order.
    {
        std::lock_guard<std::mutex> lock(mu);
        int pid = 2;
        for (const auto &[worker, list] : spans) {
            appendProcessName(entries, pid, worker);
            std::vector<std::uint32_t> seenTids;
            for (const RemoteSpan &r : list) {
                if (std::find(seenTids.begin(), seenTids.end(),
                              r.threadIndex) == seenTids.end()) {
                    seenTids.push_back(r.threadIndex);
                    appendThreadName(
                        entries, pid, r.threadIndex,
                        worker + " t" +
                            std::to_string(r.threadIndex));
                }
                std::string ctx;
                if (r.parentId == 0) {
                    ctx = rootCtx;
                    if (r.ctxParent != 0)
                        ctx += ",\"ctx_parent\":" +
                               std::to_string(r.ctxParent);
                }
                appendSpanPair(entries, pid, r.threadIndex, r.id,
                               r.parentId, r.depth, r.name,
                               r.startSeconds, r.durationSeconds,
                               r.attrsJson, ctx);
            }
            ++pid;
        }
    }

    // Same nesting-safe order as obs/export: close deepest first,
    // open shallowest first, closes ahead of opens per timestamp.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const TraceEntry &a, const TraceEntry &b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         if (a.phaseOrder != b.phaseOrder)
                             return a.phaseOrder < b.phaseOrder;
                         return a.depthKey < b.depthKey;
                     });

    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"wall_start_unix_s\":"
       << jsonNumber(obs::wallClockStartUnixSeconds())
       << ",\"trace_id\":\"" << obs::jsonEscape(traceId)
       << "\",\"traceEvents\":[";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\n" << entries[i].json;
    }
    os << "\n]}\n";
    return os.str();
}

} // namespace irtherm::fabric
