/**
 * @file
 * Job-lease bookkeeping for the sweep-fabric coordinator.
 *
 * The coordinator owns an indexed list of pending jobs; workers pull
 * batches of them under a *lease* — a token with a TTL. The table
 * tracks which jobs are queued, leased, or complete, and enforces the
 * fabric's two core invariants:
 *
 *  - **no lost work**: a lease whose holder stops renewing (dead
 *    worker, partitioned worker, injected `lease.lost`) expires, and
 *    its uncompleted jobs return to the queue to be re-leased;
 *  - **no duplicate completed work**: a job completes exactly once.
 *    The first report wins; any later report for the same job — the
 *    original holder racing its own re-leased replacement, a
 *    retransmitted `/complete`, the injected `complete.dup` — is
 *    classified Duplicate and must not be journaled.
 *
 * Completes are deliberately accepted *without* a live lease: a
 * worker that finished a job after its lease expired still did the
 * work, and dropping the report would force a re-simulation. The
 * expiry machinery mirrors the job watchdog's shape (soft deadline
 * renewed cooperatively, reaping on the next interaction) one level
 * up the stack: leases are to workers what the watchdog is to jobs.
 *
 * Expiry is swept lazily inside each public operation rather than by
 * a timer thread — the table only needs to be correct when someone
 * looks at it.
 *
 * Thread-safe; every public method takes the internal lock.
 */

#ifndef IRTHERM_FABRIC_LEASE_TABLE_HH
#define IRTHERM_FABRIC_LEASE_TABLE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace irtherm::fabric
{

/** Classification of one completed-job report. */
enum class CompleteOutcome
{
    Accepted,  ///< first report for this job; journal it
    Duplicate, ///< job already complete; drop the report
    Unknown,   ///< job index out of range (bad client)
};

/** What one successful lease call granted. */
struct LeaseGrant
{
    /** Lease token; empty when no jobs were available. */
    std::string token;
    /** Granted job indices, in queue order. */
    std::vector<std::size_t> jobs;
    double ttlSeconds = 0.0;
};

class LeaseTable
{
  public:
    /** Track @p jobCount jobs (indices 0..jobCount-1), all initially
     *  queued; leases expire @p ttlSeconds after grant/renew. */
    LeaseTable(std::size_t jobCount, double ttlSeconds);

    /**
     * Grant up to @p maxJobs queued jobs to @p worker. Returns an
     * empty grant (empty token) when nothing is queued — which means
     * either the sweep is done or every remaining job is out under a
     * live lease; the caller distinguishes via allComplete().
     */
    LeaseGrant lease(const std::string &worker, std::size_t maxJobs);

    /** Extend a live lease by one TTL. False when the token is
     *  unknown or already expired (the holder must re-lease). */
    bool renew(const std::string &token);

    /**
     * Record job @p job as complete, reported under @p token. First
     * report wins regardless of the token's state (see file
     * comment); the token, when live, has the job struck from it so
     * an emptied lease is retired immediately.
     */
    CompleteOutcome complete(const std::string &token, std::size_t job);

    /**
     * Forcibly expire one lease (the `lease.lost` fault: the
     * coordinator "forgot" it). Uncompleted jobs re-queue. False when
     * the token is not live.
     */
    bool expireToken(const std::string &token);

    /** Every job complete. */
    bool allComplete() const;

    /** Jobs not yet complete (queued or out on a lease). */
    std::size_t remaining() const;

    std::size_t completedJobs() const;
    /** Distinct worker names that ever leased. */
    std::size_t workersSeen() const;
    std::size_t leasesGranted() const;
    /** Leases that expired (TTL lapse or expireToken). */
    std::size_t leasesExpired() const;
    /** Reports classified Duplicate. */
    std::size_t duplicateCompletes() const;

    /** Times job @p job was handed out under any lease. */
    std::size_t jobGrants(std::size_t job) const;
    /** Times a lease holding job @p job expired before the job
     *  completed (each one re-queued the job). */
    std::size_t jobExpiries(std::size_t job) const;

    /** Per-worker lease accounting for the fleet health board. */
    struct WorkerLeases
    {
        std::size_t granted = 0;  ///< leases ever granted
        std::size_t expired = 0;  ///< of those, expired before empty
        std::size_t liveLeases = 0;
        std::size_t liveJobs = 0; ///< jobs out under live leases
    };

    /** Snapshot of every worker's lease accounting (sweeps expiry). */
    std::map<std::string, WorkerLeases> workerLeases() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct ActiveLease
    {
        std::string worker;
        std::vector<std::size_t> jobs; ///< granted and not yet complete
        Clock::time_point deadline;
    };

    /** Re-queue the jobs of every lease past its deadline. Lock held. */
    void sweepExpired();
    void expireLocked(const std::string &token);

    mutable std::mutex mu;
    double ttl;
    std::deque<std::size_t> queue; ///< jobs awaiting a lease
    std::vector<bool> complete_;
    std::map<std::string, ActiveLease> active;
    std::set<std::string> workers;
    std::uint64_t nextToken = 1;
    std::size_t completedCount = 0;
    std::size_t granted = 0;
    std::size_t expired = 0;
    std::size_t duplicates = 0;
    /** Per-job provenance: how often each job was leased out and how
     *  often a holding lease expired (journal columns ride on the
     *  accepted JobResult). */
    std::vector<std::size_t> jobGrants_;
    std::vector<std::size_t> jobExpiries_;
    /** Per-worker totals (live counts derive from `active`). */
    std::map<std::string, std::pair<std::size_t, std::size_t>>
        workerTotals; ///< worker -> (granted, expired)
};

} // namespace irtherm::fabric

#endif // IRTHERM_FABRIC_LEASE_TABLE_HH
