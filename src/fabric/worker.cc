#include "fabric/worker.hh"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "base/errors.hh"
#include "base/fault_injection.hh"
#include "base/logging.hh"
#include "base/shutdown.hh"
#include "fabric/fleet.hh"
#include "fabric/http_client.hh"
#include "obs/event_trace.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace_clock.hh"
#include "obs/trace_context.hh"
#include "sweep/json.hh"
#include "sweep/result_store.hh"
#include "sweep/scenario.hh"

namespace irtherm::fabric
{

namespace
{

using sweep::JobResult;
using sweep::JobStatus;
using sweep::JsonValue;
using sweep::ScenarioSpec;

void
sleepSeconds(double s)
{
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::max(0.0, s)));
}

/** Shortest round-trippable decimal for a double (JSON-safe). */
std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    char shortBuf[40];
    std::snprintf(shortBuf, sizeof(shortBuf), "%g", v);
    double back = 0.0;
    std::sscanf(shortBuf, "%lf", &back);
    return back == v ? shortBuf : buf;
}

/** One leased batch as decoded off the wire. */
struct Grant
{
    std::string token;
    std::string trace; ///< propagated context, "" when absent
    double ttlSeconds = 0.0;
    bool done = false;
    std::vector<ScenarioSpec> jobs;
};

Grant
parseGrant(const std::string &body)
{
    const JsonValue doc = sweep::parseJson(body, "lease reply");
    Grant g;
    if (const JsonValue *v = doc.find("token"); v && v->isString())
        g.token = v->text;
    if (const JsonValue *v = doc.find("trace"); v && v->isString())
        g.trace = v->text;
    if (const JsonValue *v = doc.find("ttl_s"); v && v->isNumber())
        g.ttlSeconds = v->number;
    if (const JsonValue *v = doc.find("done"))
        g.done = v->isBool() && v->boolean;
    const JsonValue *jobs = doc.find("jobs");
    if (jobs == nullptr || !jobs->isArray())
        configError("lease reply: 'jobs' must be an array");
    for (const JsonValue &entry : jobs->items) {
        const JsonValue *settings = entry.find("settings");
        if (settings == nullptr || !settings->isObject())
            configError("lease reply: job without settings object");
        ScenarioSpec spec;
        for (const auto &[key, value] : settings->members)
            spec.set(key,
                     sweep::scalarToString(value, "lease reply"));
        g.jobs.push_back(std::move(spec));
    }
    return g;
}

} // namespace

WorkerSummary
runWorker(const WorkerOptions &opts)
{
    WorkerSummary sum;
    const std::string name =
        opts.name.empty() ? "worker-" + std::to_string(::getpid())
                          : opts.name;
    obs::SpanRecorder::setThreadLabel(name);
    obs::ScopedSpan span("fabric.worker");
    span.attr("name", name);
    auto &reg = obs::MetricsRegistry::global();

    sweep::JobExecutor executor(opts.exec);

    // Distributed trace state. adopted becomes valid on the first
    // grant (either the coordinator's context or, when the grant's
    // context is malformed/absent, a locally minted degraded trace)
    // and the wire form rides every subsequent request as the
    // X-Irtherm-Trace header.
    obs::TraceContext adopted;
    std::string wireCtx;

    const auto post = [&](const std::string &path,
                          const std::string &body) {
        std::vector<std::pair<std::string, std::string>> headers;
        if (!wireCtx.empty())
            headers.emplace_back(obs::kTraceHeaderName, wireCtx);
        return httpRequest(opts.host, opts.port, "POST", path, body,
                           10.0, headers);
    };

    // Cumulative totals piggybacked on renew/complete bodies.
    std::uint64_t retries = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t impulseHits = 0;
    std::uint64_t warmStarts = 0;
    double cpuTotal = 0.0;
    const auto metricsJson = [&] {
        WorkerMetricsSnapshot s;
        s.executed = sum.executed;
        s.ok = sum.ok;
        s.failed = sum.failed;
        s.timedOut = sum.timedOut;
        s.hung = sum.hung;
        s.leases = sum.leases;
        s.renewals = sum.renewals;
        s.retries = retries;
        s.fallbacks = fallbacks;
        s.impulseHits = impulseHits;
        s.warmStarts = warmStarts;
        s.spansShipped = sum.spansShipped;
        s.spansDropped =
            sum.spansDropped + obs::SpanRecorder::global().dropped();
        s.cpuSeconds = cpuTotal;
        return s.toJson();
    };

    // Ship the recorder's new tail since the last flush to
    // POST /spans, in batches of at most kShipBatch spans. Sealed
    // spans only; a failed POST costs observability, never the job.
    std::uint64_t shippedWatermark = 0;
    const auto shipSpans = [&] {
        constexpr std::size_t kShipBatch = 1024;
        auto &rec = obs::SpanRecorder::global();
        if (!rec.enabled() || !adopted.valid())
            return;
        const std::uint64_t total = rec.recorded();
        if (total <= shippedWatermark)
            return;
        const std::vector<obs::SpanRecord> snap = rec.snapshot();
        const std::uint64_t unshipped = total - shippedWatermark;
        const std::size_t take =
            static_cast<std::size_t>(std::min<std::uint64_t>(
                unshipped, snap.size()));
        // Anything the ring already overwrote is gone.
        sum.spansDropped += unshipped - take;
        shippedWatermark = total;
        const std::string head =
            "{\"worker\":\"" + obs::jsonEscape(name) +
            "\",\"trace\":\"" + adopted.traceId +
            "\",\"lease_span\":\"" + obs::spanIdHex(adopted.spanId) +
            "\",\"wall_epoch_unix_s\":" +
            jsonNum(obs::wallClockStartUnixSeconds()) +
            ",\"dropped\":" + std::to_string(rec.dropped()) +
            ",\"spans\":[";
        for (std::size_t i = snap.size() - take; i < snap.size();
             i += kShipBatch) {
            const std::size_t end =
                std::min(snap.size(), i + kShipBatch);
            std::string body = head;
            for (std::size_t j = i; j < end; ++j) {
                const obs::SpanRecord &s = snap[j];
                if (j != i)
                    body += ',';
                body += "{\"id\":" + std::to_string(s.id) +
                        ",\"parent\":" + std::to_string(s.parentId) +
                        ",\"tid\":" + std::to_string(s.threadIndex) +
                        ",\"depth\":" + std::to_string(s.depth) +
                        ",\"name\":\"" + obs::jsonEscape(s.name) +
                        "\",\"start_s\":" + jsonNum(s.startSeconds) +
                        ",\"dur_s\":" + jsonNum(s.durationSeconds);
                if (!s.attrs.empty()) {
                    body += ",\"attrs\":{";
                    bool first = true;
                    for (const obs::EventField &f : s.attrs) {
                        if (!first)
                            body += ',';
                        first = false;
                        body += "\"" + obs::jsonEscape(f.key) +
                                "\":";
                        if (f.numeric)
                            body += jsonNum(f.num);
                        else
                            body += "\"" + obs::jsonEscape(f.text) +
                                    "\"";
                    }
                    body += "}";
                }
                body += "}";
            }
            body += "]}";
            try {
                const HttpReply r = post("/spans", body);
                if (r.status == 200)
                    sum.spansShipped += end - i;
                else
                    sum.spansDropped += end - i;
            } catch (const FatalError &) {
                sum.spansDropped += snap.size() - i;
                return;
            }
        }
    };

    inform("fabric: worker '", name, "' connecting to ", opts.host,
           ":", opts.port);

    bool connected = false;
    const double connectStart = obs::monotonicSeconds();
    bool done = false;
    while (!done && !shutdownRequested()) {
        HttpReply reply;
        try {
            reply = post("/lease",
                         "{\"worker\":\"" + obs::jsonEscape(name) +
                             "\",\"max_jobs\":" +
                             std::to_string(opts.maxLeaseJobs) + "}");
        } catch (const FatalError &e) {
            if (connected) {
                // The coordinator finished (or crashed) between our
                // polls; either way there is nothing left to lease.
                inform("fabric: worker '", name,
                       "' lost the coordinator (", e.what(),
                       "); exiting");
                break;
            }
            if (obs::monotonicSeconds() - connectStart >
                opts.connectRetrySeconds)
                throw;
            sleepSeconds(opts.pollSeconds);
            continue;
        }
        if (reply.status == 429) {
            ++sum.rejected;
            reg.counter("fabric.worker.rejected").add();
            const std::string after = reply.header("Retry-After");
            sleepSeconds(after.empty() ? 1.0
                                       : std::atof(after.c_str()));
            continue;
        }
        if (reply.status != 200)
            ioError("fabric: POST /lease returned ", reply.status);
        connected = true;

        const Grant grant = parseGrant(reply.body);

        // Adopt the propagated trace context. Malformed or absent
        // degrades to a locally minted trace id — never to failure.
        const obs::TraceContext granted =
            obs::parseTraceContext(grant.trace);
        if (granted.valid()) {
            adopted = granted;
        } else if (!adopted.valid()) {
            adopted.traceId = obs::mintTraceId();
            adopted.spanId = 0;
            inform("fabric: worker '", name,
                   "' got no usable trace context; degrading to "
                   "local trace ",
                   adopted.traceId);
        }
        wireCtx = obs::formatTraceContext(adopted);
        sum.traceId = adopted.traceId;
        obs::setProcessTraceContext(adopted);
        obs::SpanRecorder::global().setEnabled(true);

        if (grant.jobs.empty()) {
            if (grant.done)
                break;
            sleepSeconds(opts.pollSeconds);
            continue;
        }
        ++sum.leases;
        IRTHERM_EVENT("fabric.worker.lease", {"worker", name},
                      {"token", grant.token},
                      {"jobs", grant.jobs.size()});

        if (FaultInjector::global().shouldFire(faultpoint::WorkerDie, name)) {
            // Injected crash: stop renewing with jobs in hand. The
            // lease TTL lapses and the coordinator re-leases them.
            warn("fabric: injected worker.die for '", name, "'");
            sum.died = true;
            break;
        }

        // Execute the batch, renewing at half-TTL so a long job does
        // not silently forfeit the lease.
        std::vector<JobResult> results;
        std::size_t renewalsThisLease = 0;
        double leaseStamp = obs::monotonicSeconds();
        bool leaseLost = false;
        for (const ScenarioSpec &spec : grant.jobs) {
            if (shutdownRequested())
                break;
            if (grant.ttlSeconds > 0.0 &&
                obs::monotonicSeconds() - leaseStamp >
                    grant.ttlSeconds / 2.0) {
                HttpReply r;
                try {
                    r = post("/renew",
                             "{\"token\":\"" +
                                 obs::jsonEscape(grant.token) +
                                 "\",\"worker\":\"" +
                                 obs::jsonEscape(name) +
                                 "\",\"trace\":\"" + wireCtx +
                                 "\",\"metrics\":" + metricsJson() +
                                 "}");
                } catch (const FatalError &) {
                    leaseLost = true;
                    break;
                }
                if (r.status != 200) {
                    // 410: the coordinator forgot us. Post what we
                    // already finished (first-wins makes the overlap
                    // harmless) and drop the rest of the batch.
                    leaseLost = true;
                    break;
                }
                ++renewalsThisLease;
                ++sum.renewals;
                leaseStamp = obs::monotonicSeconds();
            }
            JobResult r = executor.run(spec, false, name);
            r.worker = name;
            r.leaseRenewals = renewalsThisLease;
            ++sum.executed;
            if (r.attempts > 1)
                ++retries;
            if (r.fallbackTier > 0)
                ++fallbacks;
            if (r.impulseCacheHit)
                ++impulseHits;
            if (r.warmStarted)
                ++warmStarts;
            cpuTotal += r.resources.cpuSeconds;
            switch (r.status) {
              case JobStatus::Ok:
                ++sum.ok;
                break;
              case JobStatus::Failed:
                ++sum.failed;
                break;
              case JobStatus::Timeout:
                ++sum.timedOut;
                break;
              case JobStatus::Hung:
                ++sum.hung;
                break;
            }
            results.push_back(std::move(r));
        }
        if (leaseLost)
            IRTHERM_EVENT("fabric.worker.lease_lost",
                          {"worker", name}, {"token", grant.token},
                          {"finished", results.size()});

        if (results.empty())
            continue;
        std::string body = "{\"token\":\"" +
                           obs::jsonEscape(grant.token) +
                           "\",\"worker\":\"" +
                           obs::jsonEscape(name) + "\",\"trace\":\"" +
                           wireCtx +
                           "\",\"metrics\":" + metricsJson() +
                           ",\"results\":[";
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (i)
                body += ',';
            body += results[i].toJsonLine();
        }
        body += "]}";

        for (int attempt = 0;; ++attempt) {
            HttpReply r;
            try {
                r = post("/complete", body);
            } catch (const FatalError &e) {
                warn("fabric: worker '", name,
                     "' could not report batch (", e.what(), ")");
                done = true;
                break;
            }
            if (r.status == 429) {
                ++sum.rejected;
                const std::string after = r.header("Retry-After");
                sleepSeconds(after.empty()
                                 ? 1.0
                                 : std::atof(after.c_str()));
                continue;
            }
            if (r.status != 200)
                ioError("fabric: POST /complete returned ",
                        r.status);
            const JsonValue doc =
                sweep::parseJson(r.body, "complete reply");
            if (const JsonValue *v = doc.find("duplicates");
                v && v->isNumber())
                sum.duplicates += static_cast<std::size_t>(v->number);
            if (const JsonValue *v = doc.find("done");
                v && v->isBool() && v->boolean)
                done = true;
            // Injected duplicate delivery: re-POST the identical
            // batch once; the coordinator must classify every result
            // as a duplicate and journal nothing new.
            if (attempt == 0 &&
                FaultInjector::global().shouldFire(faultpoint::CompleteDup,
                                                   grant.token)) {
                warn("fabric: injected complete.dup for ",
                     grant.token);
                continue;
            }
            break;
        }
        shipSpans();
    }

    // Final flush: spans sealed since the last report (a died worker
    // ships nothing — that is the point of the fault).
    if (!sum.died)
        shipSpans();

    IRTHERM_EVENT("fabric.worker.done", {"worker", name},
                  {"executed", sum.executed}, {"ok", sum.ok},
                  {"leases", sum.leases},
                  {"renewals", sum.renewals},
                  {"duplicates", sum.duplicates},
                  {"rejected", sum.rejected}, {"died", sum.died});
    span.attr("executed", sum.executed).attr("leases", sum.leases);
    inform("fabric: worker '", name, "' finished: ", sum.executed,
           " executed (", sum.ok, " ok), ", sum.leases, " leases, ",
           sum.renewals, " renewals");
    return sum;
}

} // namespace irtherm::fabric
