/**
 * @file
 * Shared content-addressed store of completed scenario results.
 *
 * A scenario's 64-bit FNV-1a hash covers every setting that affects
 * its simulation (sweep/scenario.hh), so the hash *is* the result:
 * any plan, any process, any machine sharing this directory can
 * answer a repeated sub-scenario from `<dir>/<hash>.json` instead of
 * re-simulating it. The payload is the JobResult's own journal-line
 * serialization — doubles travel as %.17g, which round-trips IEEE 754
 * exactly, so a cache hit is bit-for-bit identical to the direct
 * simulation that produced it.
 *
 * Only Ok results are stored: a failure or timeout may be transient
 * (a flaky disk, an overloaded worker), and caching it would pin the
 * failure forever.
 *
 * Concurrency: writes go to a per-process temp file and rename into
 * place, so two workers storing the same hash race benignly (both
 * wrote identical content) and readers never see a torn file. A
 * corrupt entry (torn by a crash mid-rename on a non-POSIX
 * filesystem, or hand-edited) reads as a miss and is evicted.
 */

#ifndef IRTHERM_FABRIC_RESULT_CACHE_HH
#define IRTHERM_FABRIC_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "sweep/result_store.hh"

namespace irtherm::fabric
{

class ResultCache
{
  public:
    /** Open (creating if needed) the cache directory @p dir. */
    explicit ResultCache(const std::string &dir);

    /**
     * Fetch the cached Ok result for @p hash into @p out. False on a
     * miss; a corrupt or non-Ok entry counts as a miss (and a corrupt
     * one is evicted).
     */
    bool lookup(const std::string &hash, sweep::JobResult &out) const;

    /** Store an Ok result under its scenario hash; non-Ok results
     *  are ignored (see file comment). */
    void store(const sweep::JobResult &result) const;

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t stores() const { return stores_.load(); }

    const std::string &directory() const { return dir_; }

    /** `<dir>/<hash>.json` for one entry. */
    std::string entryPath(const std::string &hash) const;

  private:
    std::string dir_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> stores_{0};
};

} // namespace irtherm::fabric

#endif // IRTHERM_FABRIC_RESULT_CACHE_HH
