/**
 * @file
 * Sweep-fabric worker: leases jobs from a coordinator, executes them
 * through the same JobExecutor that powers local sweeps, and reports
 * results back over POST /complete.
 *
 * A worker is stateless and needs nothing but the coordinator's
 * address: jobs arrive as full textual ScenarioSpecs, results leave
 * as the same JSONL objects the journal stores. Several workers on
 * several machines drain one plan together; a worker that dies
 * mid-lease simply stops renewing, its TTL lapses, and the
 * coordinator re-leases its jobs to someone else.
 *
 * Protocol behavior:
 *  - 429 + Retry-After from admission control → sleep and retry.
 *  - Empty grant, not done → poll again after pollSeconds.
 *  - 410 on renew (lease lost) → post what finished, drop the rest
 *    of the batch; the coordinator's first-wins journaling makes the
 *    overlap harmless.
 *  - "done": true → exit cleanly.
 *  - Transport failure before the first successful lease → retried
 *    for connectRetrySeconds (the coordinator may still be binding);
 *    after the first success it means the coordinator is gone → exit.
 *
 * Fault points (base/fault_injection): `worker.die` stops the worker
 * right after it leases (stranding the batch until TTL expiry);
 * `complete.dup` re-POSTs a successful /complete verbatim.
 *
 * Observability: each grant carries the coordinator's trace context
 * ("trace": "<trace-id>-<lease-span-id>"); the worker adopts it
 * (parenting its span tree under the lease span and echoing it in
 * the X-Irtherm-Trace request header), ships sealed span batches to
 * POST /spans after each report, and piggybacks a cumulative
 * WorkerMetricsSnapshot on every renew/complete body. A missing or
 * malformed context degrades to a locally minted trace id — the
 * observability path can never fail a job. Under
 * IRTHERM_ENABLE_METRICS=OFF no spans exist, so nothing ships.
 */

#ifndef IRTHERM_FABRIC_WORKER_HH
#define IRTHERM_FABRIC_WORKER_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sweep/runner.hh"

namespace irtherm::fabric
{

struct WorkerOptions
{
    /** Coordinator address (IPv4 dotted quad). */
    std::string host = "127.0.0.1";
    int port = 0;
    /** Worker id, stamped into result provenance; defaults to
     *  "worker-<pid>". */
    std::string name;
    /** Jobs to request per lease (coordinator may clamp). */
    std::size_t maxLeaseJobs = 4;
    /** Sleep between polls when the queue is momentarily empty. */
    double pollSeconds = 0.25;
    /** How long to retry the first connection before giving up. */
    double connectRetrySeconds = 10.0;
    /** Execution knobs (timeouts, retries, watchdog) — the same
     *  SweepOptions a local runSweep() would use. */
    sweep::SweepOptions exec;
};

struct WorkerSummary
{
    std::size_t executed = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timedOut = 0;
    std::size_t hung = 0;
    std::size_t leases = 0;
    std::size_t renewals = 0;
    /** Results the coordinator classified as duplicates. */
    std::size_t duplicates = 0;
    /** Requests shed with 429 (then retried). */
    std::size_t rejected = 0;
    /** True when the `worker.die` fault stopped this worker. */
    bool died = false;
    /** Trace id this worker worked under (adopted or locally
     *  minted). Empty if it never adopted one. */
    std::string traceId;
    /** Spans shipped to the coordinator on POST /spans. */
    std::uint64_t spansShipped = 0;
    /** Spans lost before shipping (ring overwrite or failed POST). */
    std::uint64_t spansDropped = 0;
};

/** Lease, execute, and report until the coordinator says done (or
 *  shutdown is requested). Throws IoError if the coordinator cannot
 *  be reached within connectRetrySeconds. */
WorkerSummary runWorker(const WorkerOptions &opts);

} // namespace irtherm::fabric

#endif // IRTHERM_FABRIC_WORKER_HH
