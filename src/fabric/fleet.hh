/**
 * @file
 * Fleet-wide observability state held by the coordinator: federated
 * worker metrics, the fleet health board, and the merged trace
 * store.
 *
 * Three pieces, all coordinator-side:
 *
 *  - **WorkerMetricsSnapshot**: the compact cumulative counter set a
 *    worker piggybacks on every /renew and /complete body. Totals,
 *    not deltas — last write wins, so a lost snapshot costs staleness
 *    rather than drift.
 *  - **FleetBoard**: per-worker heartbeat stamps, snapshot storage, a
 *    trailing jobs/s window, and slow/flapping-worker detection (a
 *    heartbeat older than the suspect threshold marks the worker
 *    suspect; a later heartbeat clears it and counts a flap). Renders
 *    the `/fleet` JSON document and the `irtherm_fleet_*` Prometheus
 *    lines appended to `/metrics`. Label cardinality is capped: past
 *    kMaxLabeledWorkers, workers fold into one `worker="_other"`
 *    series so a runaway fleet cannot blow up a scrape.
 *  - **FleetTraceStore**: span batches shipped by workers on
 *    `POST /spans`, timestamps rebased onto the coordinator's trace
 *    epoch at ingest (each batch carries its sender's wall-clock
 *    epoch), bounded with drop counting, merged with the
 *    coordinator's own SpanRecorder into one Perfetto-loadable
 *    Chrome trace — pid 1 is the coordinator, each worker gets its
 *    own pid (= its own track group), root spans carry the
 *    propagated trace id and the granting lease's span id in args.
 *
 * Everything here is product-side plumbing in the sense of
 * obs/metrics: it compiles under IRTHERM_ENABLE_METRICS=OFF (where
 * workers simply never record spans, so batches arrive empty and the
 * merge degrades to metadata-only output).
 *
 * Thread-safe; handlers on the HTTP listener thread and the
 * coordinator main loop share these objects.
 */

#ifndef IRTHERM_FABRIC_FLEET_HH
#define IRTHERM_FABRIC_FLEET_HH

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "fabric/lease_table.hh"
#include "obs/event_trace.hh"
#include "obs/span.hh"

namespace irtherm::sweep
{
class JsonValue;
}

namespace irtherm::fabric
{

/** Cumulative per-worker counters pushed on renew/complete. */
struct WorkerMetricsSnapshot
{
    std::uint64_t executed = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t hung = 0;
    std::uint64_t leases = 0;
    std::uint64_t renewals = 0;
    std::uint64_t retries = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t impulseHits = 0;
    std::uint64_t warmStarts = 0;
    std::uint64_t spansShipped = 0;
    std::uint64_t spansDropped = 0;
    double cpuSeconds = 0.0;

    /** Compact JSON object (the "metrics" member of fabric bodies). */
    std::string toJson() const;

    /** Parse leniently: absent members stay zero; a non-object or
     *  mistyped member yields all-zeros rather than throwing. */
    static WorkerMetricsSnapshot fromJson(const sweep::JsonValue &doc);
};

/** One worker's row on the fleet health board. */
struct FleetWorkerRow
{
    std::string name;
    double heartbeatAgeSeconds = 0.0;
    std::uint64_t heartbeats = 0;
    bool suspect = false;
    std::uint64_t flaps = 0; ///< suspect -> healthy transitions
    double jobsPerSecond = 0.0;
    WorkerMetricsSnapshot metrics;
    LeaseTable::WorkerLeases leases;
};

/**
 * Coordinator-side federation of worker snapshots plus heartbeat
 * based suspect detection.
 */
class FleetBoard
{
  public:
    /** Cap on per-worker Prometheus label values (see file doc). */
    static constexpr std::size_t kMaxLabeledWorkers = 32;

    /** Stamp a heartbeat (any lease/renew/complete/spans contact). */
    void heartbeat(const std::string &worker);

    /** Store @p snap as @p worker's latest totals (also a heartbeat). */
    void ingest(const std::string &worker,
                const WorkerMetricsSnapshot &snap);

    /**
     * Mark every worker whose last heartbeat is older than
     * @p thresholdSeconds suspect. Returns the workers that just
     * transitioned (for the `worker.suspect` event); already-suspect
     * workers are not repeated.
     */
    std::vector<std::string> sweepSuspects(double thresholdSeconds);

    /** Every worker's row, leases merged in from @p leases. */
    std::vector<FleetWorkerRow>
    rows(const std::map<std::string, LeaseTable::WorkerLeases> &leases)
        const;

    /** The `/fleet` JSON document ("irtherm.fleet.v1"). */
    std::string fleetJson(
        const std::map<std::string, LeaseTable::WorkerLeases> &leases,
        const std::string &traceId, std::uint64_t spansStored,
        std::uint64_t spansDroppedHere) const;

    /** `irtherm_fleet_*` exposition lines (appended to /metrics). */
    std::string prometheusText(
        const std::map<std::string, LeaseTable::WorkerLeases> &leases)
        const;

    /** Workers currently marked suspect. */
    std::size_t suspectCount() const;

  private:
    struct Slot
    {
        double lastSeen = 0.0; ///< obs::monotonicSeconds() stamp
        std::uint64_t heartbeats = 0;
        bool suspect = false;
        std::uint64_t flaps = 0;
        WorkerMetricsSnapshot snap;
        /** Trailing (time, executed) stamps for the jobs/s window. */
        std::deque<std::pair<double, std::uint64_t>> window;
    };

    void stampLocked(Slot &slot);

    mutable std::mutex mu;
    std::map<std::string, Slot> slots;
};

/** One span as shipped by a worker (timestamps already rebased). */
struct RemoteSpan
{
    std::uint64_t id = 0;
    std::uint64_t parentId = 0;
    std::uint32_t threadIndex = 0;
    std::uint32_t depth = 0;
    std::string name;
    double startSeconds = 0.0; ///< on the COORDINATOR trace epoch
    double durationSeconds = 0.0;
    /** Pre-rendered `"key":value` attribute fragments ("" if none). */
    std::string attrsJson;
    /** Lease span id the batch arrived under (roots only, else 0). */
    std::uint64_t ctxParent = 0;
};

/**
 * Bounded store of worker-shipped spans plus the merge into one
 * Chrome trace document.
 */
class FleetTraceStore
{
  public:
    static constexpr std::size_t kDefaultCapacity = 262144;

    explicit FleetTraceStore(std::size_t capacity = kDefaultCapacity);

    /**
     * Ingest one `POST /spans` batch. @p body is the raw JSON; it is
     * parsed here (throws FatalError on malformed JSON, which the
     * HTTP handler maps to a 400). Returns the number of spans
     * accepted. @p coordEpochUnixSeconds anchors the rebase.
     */
    std::size_t ingestBatch(const std::string &body,
                            double coordEpochUnixSeconds,
                            std::string *workerOut = nullptr);

    std::uint64_t received() const; ///< spans ever accepted
    std::uint64_t dropped() const;  ///< spans shed at capacity
    /** Worker-side ring drops, as reported in batches (max). */
    std::uint64_t workerDropped() const;
    std::size_t size() const;

    /**
     * Merge the coordinator's own recorder (@p local, pid 1, with
     * optional event-trace instants) and every shipped worker span
     * (one pid per worker) into a Chrome trace_event document
     * annotated with @p traceId.
     */
    std::string mergedTraceJson(const obs::SpanRecorder &local,
                                const obs::EventTrace *overlay,
                                const std::string &traceId) const;

  private:
    mutable std::mutex mu;
    std::size_t cap;
    /** worker name -> its shipped spans, ingest order. */
    std::map<std::string, std::vector<RemoteSpan>> spans;
    std::size_t stored = 0;
    std::uint64_t receivedCount = 0;
    std::uint64_t droppedCount = 0;
    std::uint64_t workerDroppedMax = 0;
};

} // namespace irtherm::fabric

#endif // IRTHERM_FABRIC_FLEET_HH
