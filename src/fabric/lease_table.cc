#include "fabric/lease_table.hh"

#include <algorithm>

#include "obs/event_trace.hh"
#include "obs/metrics.hh"

namespace irtherm::fabric
{

LeaseTable::LeaseTable(std::size_t jobCount, double ttlSeconds)
    : ttl(ttlSeconds), complete_(jobCount, false),
      jobGrants_(jobCount, 0), jobExpiries_(jobCount, 0)
{
    for (std::size_t i = 0; i < jobCount; ++i)
        queue.push_back(i);
}

void
LeaseTable::sweepExpired()
{
    const Clock::time_point now = Clock::now();
    std::vector<std::string> lapsed;
    for (const auto &[token, lease] : active) {
        if (now > lease.deadline)
            lapsed.push_back(token);
    }
    for (const std::string &token : lapsed)
        expireLocked(token);
}

void
LeaseTable::expireLocked(const std::string &token)
{
    const auto it = active.find(token);
    if (it == active.end())
        return;
    for (const std::size_t job : it->second.jobs) {
        if (!complete_[job]) {
            queue.push_back(job);
            ++jobExpiries_[job];
        }
    }
    ++workerTotals[it->second.worker].second;
    IRTHERM_EVENT("fabric.lease.expired", {"token", token},
                  {"worker", it->second.worker},
                  {"requeued", it->second.jobs.size()});
    obs::MetricsRegistry::global()
        .counter("fabric.leases.expired")
        .add();
    active.erase(it);
    ++expired;
}

LeaseGrant
LeaseTable::lease(const std::string &worker, std::size_t maxJobs)
{
    std::lock_guard<std::mutex> lock(mu);
    sweepExpired();
    workers.insert(worker);

    LeaseGrant grant;
    grant.ttlSeconds = ttl;
    while (grant.jobs.size() < std::max<std::size_t>(1, maxJobs) &&
           !queue.empty()) {
        const std::size_t job = queue.front();
        queue.pop_front();
        // A job can sit in the queue twice after an expiry race
        // (original lease expired, job re-queued, then completed by
        // the original holder); skip anything already done.
        if (!complete_[job])
            grant.jobs.push_back(job);
    }
    if (grant.jobs.empty())
        return grant;

    grant.token = "lease-" + std::to_string(nextToken++);
    for (const std::size_t job : grant.jobs)
        ++jobGrants_[job];
    ++workerTotals[worker].first;
    ActiveLease &lease = active[grant.token];
    lease.worker = worker;
    lease.jobs = grant.jobs;
    lease.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(ttl));
    ++granted;
    obs::MetricsRegistry::global()
        .counter("fabric.leases.granted")
        .add();
    return grant;
}

bool
LeaseTable::renew(const std::string &token)
{
    std::lock_guard<std::mutex> lock(mu);
    sweepExpired();
    const auto it = active.find(token);
    if (it == active.end())
        return false;
    it->second.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(ttl));
    return true;
}

CompleteOutcome
LeaseTable::complete(const std::string &token, std::size_t job)
{
    std::lock_guard<std::mutex> lock(mu);
    sweepExpired();
    if (job >= complete_.size())
        return CompleteOutcome::Unknown;
    if (complete_[job]) {
        ++duplicates;
        obs::MetricsRegistry::global()
            .counter("fabric.completes.duplicate")
            .add();
        return CompleteOutcome::Duplicate;
    }
    complete_[job] = true;
    ++completedCount;
    // Strike the job from its lease (when still live) so a fully
    // reported lease retires instead of expiring later and
    // pointlessly re-queueing nothing.
    const auto it = active.find(token);
    if (it != active.end()) {
        auto &jobs = it->second.jobs;
        jobs.erase(std::remove(jobs.begin(), jobs.end(), job),
                   jobs.end());
        if (jobs.empty())
            active.erase(it);
    }
    return CompleteOutcome::Accepted;
}

bool
LeaseTable::expireToken(const std::string &token)
{
    std::lock_guard<std::mutex> lock(mu);
    if (active.find(token) == active.end())
        return false;
    expireLocked(token);
    return true;
}

bool
LeaseTable::allComplete() const
{
    std::lock_guard<std::mutex> lock(mu);
    return completedCount == complete_.size();
}

std::size_t
LeaseTable::remaining() const
{
    std::lock_guard<std::mutex> lock(mu);
    return complete_.size() - completedCount;
}

std::size_t
LeaseTable::completedJobs() const
{
    std::lock_guard<std::mutex> lock(mu);
    return completedCount;
}

std::size_t
LeaseTable::workersSeen() const
{
    std::lock_guard<std::mutex> lock(mu);
    return workers.size();
}

std::size_t
LeaseTable::leasesGranted() const
{
    std::lock_guard<std::mutex> lock(mu);
    return granted;
}

std::size_t
LeaseTable::leasesExpired() const
{
    std::lock_guard<std::mutex> lock(mu);
    return expired;
}

std::size_t
LeaseTable::duplicateCompletes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return duplicates;
}

std::size_t
LeaseTable::jobGrants(std::size_t job) const
{
    std::lock_guard<std::mutex> lock(mu);
    return job < jobGrants_.size() ? jobGrants_[job] : 0;
}

std::size_t
LeaseTable::jobExpiries(std::size_t job) const
{
    std::lock_guard<std::mutex> lock(mu);
    return job < jobExpiries_.size() ? jobExpiries_[job] : 0;
}

std::map<std::string, LeaseTable::WorkerLeases>
LeaseTable::workerLeases() const
{
    std::lock_guard<std::mutex> lock(mu);
    // const_cast-free lazy sweep is not available here; stale live
    // counts for a just-lapsed lease self-correct on the next
    // mutating call, which is fine for a health board.
    std::map<std::string, WorkerLeases> out;
    for (const std::string &w : workers)
        out[w]; // every worker appears, even if idle
    for (const auto &[worker, totals] : workerTotals) {
        out[worker].granted = totals.first;
        out[worker].expired = totals.second;
    }
    for (const auto &[token, lease] : active) {
        WorkerLeases &w = out[lease.worker];
        ++w.liveLeases;
        w.liveJobs += lease.jobs.size();
    }
    return out;
}

} // namespace irtherm::fabric
