/**
 * @file
 * Minimal blocking HTTP/1.1 client for the fabric lease protocol.
 *
 * The mirror image of obs/http_server: raw POSIX sockets, one
 * request per connection (Connection: close), zero dependencies. Just
 * enough protocol for a worker talking to its coordinator on a
 * trusted network — status line, headers (for Retry-After and
 * Content-Length), body.
 *
 * Transport failures (connect refused, timeout, torn connection)
 * throw IoError; HTTP-level errors (4xx/5xx) are returned to the
 * caller as a normal HttpReply — a 429 or 410 is protocol, not
 * failure.
 */

#ifndef IRTHERM_FABRIC_HTTP_CLIENT_HH
#define IRTHERM_FABRIC_HTTP_CLIENT_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace irtherm::fabric
{

/** One parsed HTTP response. */
struct HttpReply
{
    int status = 0;
    std::string body;
    /** Response headers, keys lowercased. */
    std::map<std::string, std::string> headers;

    /** Header value by lowercase name, or "" when absent. */
    std::string header(const std::string &name) const;
};

/**
 * Send one request and read the full response. @p body is sent with
 * a Content-Length (also for GET, where it is empty and harmless).
 * @p extraHeaders are emitted verbatim after the standard ones
 * (used for the propagated `X-Irtherm-Trace` context). Throws
 * IoError on transport failures; @p timeoutSeconds bounds both
 * connect and each socket read/write.
 */
HttpReply httpRequest(
    const std::string &host, int port, const std::string &method,
    const std::string &path, const std::string &requestBody = "",
    double timeoutSeconds = 10.0,
    const std::vector<std::pair<std::string, std::string>>
        &extraHeaders = {});

} // namespace irtherm::fabric

#endif // IRTHERM_FABRIC_HTTP_CLIENT_HH
