/**
 * @file
 * Independent finite-difference reference for the AIR-SINK stack.
 *
 * The paper validated only its oil model against ANSYS (Figs. 2-3);
 * the conventional-package side of the comparison inherits HotSpot's
 * compact spreader/heatsink treatment (die-footprint cells plus
 * peripheral strip nodes). This solver checks that treatment
 * independently: a full 3-D FD discretization over the *heatsink*
 * extent with a per-cell material map — die and TIM cells exist only
 * inside their footprints (air elsewhere), the spreader inside its
 * own — and the lumped sink-to-ambient resistance distributed
 * uniformly over the sink top. Steady-state only; the compact
 * model's strip approximation is a steady spreading question.
 */

#ifndef IRTHERM_REFSIM_FD_STACK_SOLVER_HH
#define IRTHERM_REFSIM_FD_STACK_SOLVER_HH

#include <cstddef>
#include <vector>

#include "core/package.hh"
#include "numeric/sparse.hh"

namespace irtherm
{

/** Discretization options for the stack reference solver. */
struct FdStackOptions
{
    std::size_t nx = 30; ///< cells across the sink extent
    std::size_t ny = 30;
    std::size_t dieSlabs = 2;      ///< z-slabs through the die
    std::size_t spreaderSlabs = 2; ///< z-slabs through the spreader
    std::size_t sinkSlabs = 3;     ///< z-slabs through the sink
};

/**
 * 3-D FD model of die / TIM / spreader / heatsink under the lumped
 * convection boundary. Geometry and materials come from an AIR-SINK
 * PackageConfig; power is injected into the bottom die slab over the
 * die footprint.
 */
class FdStackSolver
{
  public:
    FdStackSolver(double die_width, double die_height,
                  const PackageConfig &pkg,
                  const FdStackOptions &opts = {});

    /**
     * Steady junction-plane temperatures over the *die footprint*
     * (kelvin), row-major on the solver's die-cell grid; pair with
     * dieCellsX()/dieCellsY().
     *
     * @param die_cell_powers watts per die cell (same grid)
     */
    std::vector<double>
    steadyJunctionTemperatures(
        const std::vector<double> &die_cell_powers) const;

    std::size_t dieCellsX() const { return die_nx; }
    std::size_t dieCellsY() const { return die_ny; }

    /** Uniform total power over the die footprint. */
    std::vector<double> uniformPowerMap(double total_watts) const;

    /**
     * Power concentrated on a centered square source of the given
     * side (meters).
     */
    std::vector<double> centerSourcePowerMap(double total_watts,
                                             double source_side) const;

  private:
    std::size_t index(std::size_t ix, std::size_t iy,
                      std::size_t iz) const;

    FdStackOptions opts;
    double sinkSide;
    double dx, dy;
    std::size_t nz;
    /** Index range of die cells within the sink-extent grid. */
    std::size_t die_ix0, die_iy0, die_nx, die_ny;
    std::vector<double> slabThickness; ///< per z-layer
    CsrMatrix g;
    double ambient;
};

} // namespace irtherm

#endif // IRTHERM_REFSIM_FD_STACK_SOLVER_HH
