#include "refsim/fd_solver.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "materials/convection.hh"
#include "numeric/iterative.hh"
#include "numeric/ode.hh"
#include "obs/metrics.hh"

namespace irtherm
{

FdSolver::FdSolver(double die_width, double die_height,
                   double die_thickness, const SolidMaterial &silicon,
                   const Fluid &oil, double velocity,
                   FlowDirection direction, double ambient_,
                   const FdOptions &opts_)
    : opts(opts_), width(die_width), height(die_height),
      thickness(die_thickness), ambient(ambient_),
      g(opts_.nx, opts_.ny, opts_.nz + 1)
{
    if (opts.nx == 0 || opts.ny == 0 || opts.nz == 0)
        fatal("FdSolver: zero grid dimension");
    silicon.check();
    oil.check();

    dx = width / static_cast<double>(opts.nx);
    dy = height / static_cast<double>(opts.ny);
    dz = thickness / static_cast<double>(opts.nz);

    const std::size_t columns = opts.nx * opts.ny;
    nodes = columns * opts.nz + columns; // silicon + oil film nodes
    cap.assign(nodes, 0.0);

    const double k = silicon.conductivity;
    const double cv = silicon.volumetricHeatCapacity;
    const double cell_area = dx * dy;

    // Silicon: capacitance plus 3-D conduction stamps, straight into
    // the matrix-free stencil (layer nz is the oil film; its links
    // are stamped below).
    for (std::size_t iz = 0; iz < opts.nz; ++iz) {
        for (std::size_t iy = 0; iy < opts.ny; ++iy) {
            for (std::size_t ix = 0; ix < opts.nx; ++ix) {
                cap[cellIndex(ix, iy, iz)] = cv * cell_area * dz;
                if (ix + 1 < opts.nx)
                    g.stampLinkX(ix, iy, iz, k * dy * dz / dx);
                if (iy + 1 < opts.ny)
                    g.stampLinkY(ix, iy, iz, k * dx * dz / dy);
                if (iz + 1 < opts.nz)
                    g.stampLinkZ(ix, iy, iz, k * dx * dy / dz);
            }
        }
    }

    // Oil film: per-column node between the top silicon slab and
    // ambient, with the local h(x) and local boundary-layer
    // capacitance evaluated at the cell centre.
    const std::size_t top = opts.nz - 1;
    for (std::size_t iy = 0; iy < opts.ny; ++iy) {
        for (std::size_t ix = 0; ix < opts.nx; ++ix) {
            double s = 0.0;
            switch (direction) {
              case FlowDirection::LeftToRight:
                s = (static_cast<double>(ix) + 0.5) * dx;
                break;
              case FlowDirection::RightToLeft:
                s = width - (static_cast<double>(ix) + 0.5) * dx;
                break;
              case FlowDirection::BottomToTop:
                s = (static_cast<double>(iy) + 0.5) * dy;
                break;
              case FlowDirection::TopToBottom:
                s = height - (static_cast<double>(iy) + 0.5) * dy;
                break;
            }
            const double h =
                localHeatTransferCoefficient(oil, velocity, s);
            const double g_conv = h * cell_area;
            const double film_cap =
                oil.volumetricHeatCapacity() * cell_area *
                localBoundaryLayerThickness(oil, velocity, s);

            // Half the film resistance on each side of the film node,
            // plus conduction through the top half silicon slab. The
            // oil node is the (ix, iy) cell of stencil layer nz; that
            // layer has no lateral links, so the columns stay
            // thermally uncoupled through the film as before.
            const double g_half_slab = k * cell_area / (0.5 * dz);
            const double g_upper =
                1.0 / (1.0 / (2.0 * g_conv) + 1.0 / g_half_slab);
            g.stampLinkZ(ix, iy, top, g_upper);
            g.stampGround(ix, iy, opts.nz, 2.0 * g_conv);
            cap[oilIndex(ix, iy)] = film_cap;
            convConductance += g_conv;
        }
    }
}

std::size_t
FdSolver::cellIndex(std::size_t ix, std::size_t iy, std::size_t iz) const
{
    return iz * opts.nx * opts.ny + iy * opts.nx + ix;
}

std::size_t
FdSolver::oilIndex(std::size_t ix, std::size_t iy) const
{
    return opts.nz * opts.nx * opts.ny + iy * opts.nx + ix;
}

std::vector<double>
FdSolver::uniformPowerMap(double total_watts) const
{
    return std::vector<double>(
        opts.nx * opts.ny,
        total_watts / static_cast<double>(opts.nx * opts.ny));
}

std::vector<double>
FdSolver::centerSourcePowerMap(double total_watts,
                               double source_side) const
{
    std::vector<double> p(opts.nx * opts.ny, 0.0);
    const double x0 = 0.5 * (width - source_side);
    const double x1 = 0.5 * (width + source_side);
    const double y0 = 0.5 * (height - source_side);
    const double y1 = 0.5 * (height + source_side);

    double covered = 0.0;
    std::vector<double> frac(opts.nx * opts.ny, 0.0);
    for (std::size_t iy = 0; iy < opts.ny; ++iy) {
        for (std::size_t ix = 0; ix < opts.nx; ++ix) {
            const double cx0 = static_cast<double>(ix) * dx;
            const double cy0 = static_cast<double>(iy) * dy;
            const double ox = std::max(
                0.0, std::min(cx0 + dx, x1) - std::max(cx0, x0));
            const double oy = std::max(
                0.0, std::min(cy0 + dy, y1) - std::max(cy0, y0));
            frac[iy * opts.nx + ix] = ox * oy;
            covered += ox * oy;
        }
    }
    if (covered <= 0.0)
        fatal("centerSourcePowerMap: source lies outside the die");
    for (std::size_t i = 0; i < p.size(); ++i)
        p[i] = total_watts * frac[i] / covered;
    return p;
}

std::vector<double>
FdSolver::nodePowers(const std::vector<double> &cell_powers) const
{
    if (cell_powers.size() != opts.nx * opts.ny)
        fatal("FdSolver: power map size mismatch");
    std::vector<double> p(nodes, 0.0);
    // Heat enters at the junction (bottom) slab, iz = 0.
    for (std::size_t i = 0; i < cell_powers.size(); ++i)
        p[i] = cell_powers[i];
    return p;
}

std::vector<double>
FdSolver::steadyJunctionTemperatures(
    const std::vector<double> &cell_powers) const
{
    const std::vector<double> p = nodePowers(cell_powers);
    IterativeOptions io;
    io.tolerance = 1e-11;
    io.maxIterations = 200000;
    // Pure grid stencil: the geometric V-cycle makes the iteration
    // count independent of nx x ny (SSOR degrades with resolution).
    io.preconditioner = PreconditionerKind::Multigrid;
    auto &reg = obs::MetricsRegistry::global();
    obs::ScopedTimer span(reg.timer("refsim.fd.steady_solve_time"));
    IterativeResult res = conjugateGradient(g, p, {}, io);
    reg.counter("refsim.fd.steady_solves").add();
    reg.histogram("refsim.fd.steady_cg_iterations")
        .observe(static_cast<double>(res.iterations));
    if (!res.converged)
        fatal("FdSolver: steady CG failed, residual ", res.residualNorm);

    std::vector<double> junction(opts.nx * opts.ny);
    for (std::size_t i = 0; i < junction.size(); ++i)
        junction[i] = res.x[i] + ambient;
    return junction;
}

std::vector<FdSample>
FdSolver::transientFromAmbient(const std::vector<double> &cell_powers,
                               double duration,
                               double sample_interval) const
{
    const std::vector<double> p = nodePowers(cell_powers);
    std::vector<double> rise(nodes, 0.0);
    CrankNicolsonIntegrator cn(g, cap, opts.timeStep);

    const auto steps_per_sample = static_cast<std::size_t>(
        std::max(1.0, std::round(sample_interval / opts.timeStep)));
    const auto total_samples = static_cast<std::size_t>(
        std::round(duration / sample_interval));

    std::vector<FdSample> out;
    out.reserve(total_samples + 1);

    auto record = [&](double t) {
        FdSample s;
        s.time = t;
        const std::size_t cx = opts.nx / 2;
        const std::size_t cy = opts.ny / 2;
        s.centerTemp =
            rise[cy * opts.nx + cx] + ambient;
        double mx = -1e300, mn = 1e300, mean = 0.0;
        for (std::size_t i = 0; i < opts.nx * opts.ny; ++i) {
            mx = std::max(mx, rise[i]);
            mn = std::min(mn, rise[i]);
            mean += rise[i];
        }
        s.maxTemp = mx + ambient;
        s.minTemp = mn + ambient;
        s.meanTemp =
            mean / static_cast<double>(opts.nx * opts.ny) + ambient;
        out.push_back(s);
    };

    auto &sweeps =
        obs::MetricsRegistry::global().counter("refsim.fd.cn_sweeps");
    record(0.0);
    for (std::size_t s = 1; s <= total_samples; ++s) {
        for (std::size_t k = 0; k < steps_per_sample; ++k)
            cn.step(rise, p);
        sweeps.add(steps_per_sample);
        record(static_cast<double>(s * steps_per_sample) *
               opts.timeStep);
    }
    return out;
}

double
FdSolver::equivalentConvectiveResistance() const
{
    return 1.0 / convConductance;
}

} // namespace irtherm
