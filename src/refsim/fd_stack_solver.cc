#include "refsim/fd_stack_solver.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "numeric/iterative.hh"
#include "obs/metrics.hh"

namespace irtherm
{

namespace
{

/** Still air filling the volume outside a layer's solid extent. */
constexpr double airConductivity = 0.026;

} // namespace

FdStackSolver::FdStackSolver(double die_width, double die_height,
                             const PackageConfig &pkg,
                             const FdStackOptions &opts_)
    : opts(opts_)
{
    if (pkg.cooling != CoolingKind::AirSink)
        fatal("FdStackSolver: expects an AIR-SINK package");
    pkg.check(die_width, die_height);
    ambient = pkg.ambient;

    const AirSinkSpec &as = pkg.airSink;
    sinkSide = as.sinkSide;
    dx = sinkSide / static_cast<double>(opts.nx);
    dy = sinkSide / static_cast<double>(opts.ny);
    nz = opts.dieSlabs + 1 + opts.spreaderSlabs + opts.sinkSlabs;

    // z-layer thickness and nominal conductivity, bottom (junction)
    // to top (sink surface).
    std::vector<double> solid_k;
    for (std::size_t s = 0; s < opts.dieSlabs; ++s) {
        slabThickness.push_back(pkg.dieThickness /
                                static_cast<double>(opts.dieSlabs));
        solid_k.push_back(pkg.dieMaterial.conductivity);
    }
    slabThickness.push_back(as.timThickness);
    solid_k.push_back(as.timMaterial.conductivity);
    for (std::size_t s = 0; s < opts.spreaderSlabs; ++s) {
        slabThickness.push_back(
            as.spreaderThickness /
            static_cast<double>(opts.spreaderSlabs));
        solid_k.push_back(as.spreaderMaterial.conductivity);
    }
    for (std::size_t s = 0; s < opts.sinkSlabs; ++s) {
        slabThickness.push_back(as.sinkThickness /
                                static_cast<double>(opts.sinkSlabs));
        solid_k.push_back(as.sinkMaterial.conductivity);
    }

    // Solid lateral extent per z-layer: the die and TIM exist only
    // over the die footprint, the spreader over its own square, the
    // sink everywhere.
    const double cx = 0.5 * sinkSide;
    const double cy = 0.5 * sinkSide;
    struct Extent
    {
        double x0, y0, x1, y1;
    };
    std::vector<Extent> extent;
    const Extent die_ext{cx - 0.5 * die_width, cy - 0.5 * die_height,
                         cx + 0.5 * die_width, cy + 0.5 * die_height};
    const Extent spr_ext{
        cx - 0.5 * as.spreaderSide, cy - 0.5 * as.spreaderSide,
        cx + 0.5 * as.spreaderSide, cy + 0.5 * as.spreaderSide};
    const Extent all_ext{0.0, 0.0, sinkSide, sinkSide};
    for (std::size_t s = 0; s < opts.dieSlabs + 1; ++s)
        extent.push_back(die_ext); // die slabs + TIM
    for (std::size_t s = 0; s < opts.spreaderSlabs; ++s)
        extent.push_back(spr_ext);
    for (std::size_t s = 0; s < opts.sinkSlabs; ++s)
        extent.push_back(all_ext);

    // Die-footprint cell window (cell centres inside the die).
    die_ix0 = opts.nx;
    die_iy0 = opts.ny;
    std::size_t die_ix1 = 0, die_iy1 = 0;
    for (std::size_t ix = 0; ix < opts.nx; ++ix) {
        const double x = (static_cast<double>(ix) + 0.5) * dx;
        if (x > die_ext.x0 && x < die_ext.x1) {
            die_ix0 = std::min(die_ix0, ix);
            die_ix1 = std::max(die_ix1, ix + 1);
        }
    }
    for (std::size_t iy = 0; iy < opts.ny; ++iy) {
        const double y = (static_cast<double>(iy) + 0.5) * dy;
        if (y > die_ext.y0 && y < die_ext.y1) {
            die_iy0 = std::min(die_iy0, iy);
            die_iy1 = std::max(die_iy1, iy + 1);
        }
    }
    if (die_ix0 >= die_ix1 || die_iy0 >= die_iy1)
        fatal("FdStackSolver: die footprint covers no cells");
    die_nx = die_ix1 - die_ix0;
    die_ny = die_iy1 - die_iy0;

    // Per-(cell, layer) conductivity.
    auto cell_k = [&](std::size_t ix, std::size_t iy,
                      std::size_t iz) {
        const double x = (static_cast<double>(ix) + 0.5) * dx;
        const double y = (static_cast<double>(iy) + 0.5) * dy;
        const Extent &e = extent[iz];
        const bool inside =
            x > e.x0 && x < e.x1 && y > e.y0 && y < e.y1;
        return inside ? solid_k[iz] : airConductivity;
    };

    SparseBuilder sb(opts.nx * opts.ny * nz, opts.nx * opts.ny * nz);
    for (std::size_t iz = 0; iz < nz; ++iz) {
        const double t = slabThickness[iz];
        for (std::size_t iy = 0; iy < opts.ny; ++iy) {
            for (std::size_t ix = 0; ix < opts.nx; ++ix) {
                const std::size_t c = index(ix, iy, iz);
                const double ka = cell_k(ix, iy, iz);
                if (ix + 1 < opts.nx) {
                    const double kb = cell_k(ix + 1, iy, iz);
                    sb.stampConductance(
                        c, index(ix + 1, iy, iz),
                        t * dy * 2.0 * ka * kb / (dx * (ka + kb)));
                }
                if (iy + 1 < opts.ny) {
                    const double kb = cell_k(ix, iy + 1, iz);
                    sb.stampConductance(
                        c, index(ix, iy + 1, iz),
                        t * dx * 2.0 * ka * kb / (dy * (ka + kb)));
                }
                if (iz + 1 < nz) {
                    const double kb = cell_k(ix, iy, iz + 1);
                    const double r =
                        0.5 * t / ka +
                        0.5 * slabThickness[iz + 1] / kb;
                    sb.stampConductance(c, index(ix, iy, iz + 1),
                                        dx * dy / r);
                }
            }
        }
    }

    // Lumped convection distributed over the sink top.
    const double g_cell =
        (dx * dy / (sinkSide * sinkSide)) /
        as.sinkToAmbientResistance;
    for (std::size_t iy = 0; iy < opts.ny; ++iy)
        for (std::size_t ix = 0; ix < opts.nx; ++ix)
            sb.stampGroundConductance(index(ix, iy, nz - 1), g_cell);

    g = sb.build();
}

std::size_t
FdStackSolver::index(std::size_t ix, std::size_t iy,
                     std::size_t iz) const
{
    return iz * opts.nx * opts.ny + iy * opts.nx + ix;
}

std::vector<double>
FdStackSolver::uniformPowerMap(double total_watts) const
{
    return std::vector<double>(
        die_nx * die_ny,
        total_watts / static_cast<double>(die_nx * die_ny));
}

std::vector<double>
FdStackSolver::centerSourcePowerMap(double total_watts,
                                    double source_side) const
{
    std::vector<double> p(die_nx * die_ny, 0.0);
    // Source centred on the die footprint, quantized to cells whose
    // centres fall inside it.
    const double cx = 0.5 * sinkSide;
    const double cy = 0.5 * sinkSide;
    std::vector<std::size_t> inside;
    for (std::size_t jy = 0; jy < die_ny; ++jy) {
        for (std::size_t jx = 0; jx < die_nx; ++jx) {
            const double x =
                (static_cast<double>(die_ix0 + jx) + 0.5) * dx;
            const double y =
                (static_cast<double>(die_iy0 + jy) + 0.5) * dy;
            if (std::abs(x - cx) < 0.5 * source_side &&
                std::abs(y - cy) < 0.5 * source_side) {
                inside.push_back(jy * die_nx + jx);
            }
        }
    }
    if (inside.empty())
        fatal("FdStackSolver: source smaller than one cell");
    for (std::size_t i : inside)
        p[i] = total_watts / static_cast<double>(inside.size());
    return p;
}

std::vector<double>
FdStackSolver::steadyJunctionTemperatures(
    const std::vector<double> &die_cell_powers) const
{
    if (die_cell_powers.size() != die_nx * die_ny)
        fatal("FdStackSolver: power map size mismatch");

    std::vector<double> rhs(g.rows(), 0.0);
    for (std::size_t jy = 0; jy < die_ny; ++jy) {
        for (std::size_t jx = 0; jx < die_nx; ++jx) {
            rhs[index(die_ix0 + jx, die_iy0 + jy, 0)] =
                die_cell_powers[jy * die_nx + jx];
        }
    }

    IterativeOptions io;
    io.tolerance = 1e-11;
    io.maxIterations = 200000;
    auto &reg = obs::MetricsRegistry::global();
    obs::ScopedTimer span(reg.timer("refsim.fdstack.steady_solve_time"));
    const IterativeResult res = conjugateGradient(g, rhs, {}, io);
    reg.counter("refsim.fdstack.steady_solves").add();
    reg.histogram("refsim.fdstack.steady_cg_iterations")
        .observe(static_cast<double>(res.iterations));
    if (!res.converged)
        fatal("FdStackSolver: CG failed, residual ", res.residualNorm);

    std::vector<double> junction(die_nx * die_ny);
    for (std::size_t jy = 0; jy < die_ny; ++jy) {
        for (std::size_t jx = 0; jx < die_nx; ++jx) {
            junction[jy * die_nx + jx] =
                res.x[index(die_ix0 + jx, die_iy0 + jy, 0)] + ambient;
        }
    }
    return junction;
}

} // namespace irtherm
