/**
 * @file
 * Independent fine-grid finite-difference reference solver.
 *
 * Plays the role of ANSYS in the paper's Figs. 2-3 validation: a
 * much finer discretization of the same physics, built through a
 * different code path, against which the compact StackModel is
 * checked. Differences from the compact model:
 *
 *  - the silicon is resolved in z (nz slabs instead of one);
 *  - the oil film uses the *local* h(x) evaluated at each cell
 *    centre (not the cell-averaged integral) and a separate film
 *    node per column with the local boundary-layer capacitance;
 *  - transients use Crank-Nicolson instead of RK4/backward Euler.
 *
 * Scope matches the paper's validation setup: bare die in an oil
 * flow, adiabatic bottom, no package (the ANSYS model had none).
 */

#ifndef IRTHERM_REFSIM_FD_SOLVER_HH
#define IRTHERM_REFSIM_FD_SOLVER_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "core/package.hh"
#include "materials/fluid.hh"
#include "materials/material.hh"
#include "numeric/grid_stencil.hh"

namespace irtherm
{

/** Discretization options for the reference solver. */
struct FdOptions
{
    std::size_t nx = 64;
    std::size_t ny = 64;
    std::size_t nz = 4;     ///< silicon slabs through the thickness
    double timeStep = 2e-3; ///< Crank-Nicolson step (s)
};

/** One probed transient sample. */
struct FdSample
{
    double time = 0.0;        ///< seconds
    double centerTemp = 0.0;  ///< junction temperature at die centre (K)
    double maxTemp = 0.0;     ///< hottest junction cell (K)
    double minTemp = 0.0;     ///< coolest junction cell (K)
    double meanTemp = 0.0;    ///< area-mean junction temperature (K)
};

/**
 * Finite-difference model of a bare silicon die under laminar oil
 * flow. Power is injected in the bottom (junction) slab; the oil
 * flows over the top (back) surface.
 */
class FdSolver
{
  public:
    FdSolver(double die_width, double die_height, double die_thickness,
             const SolidMaterial &silicon, const Fluid &oil,
             double velocity, FlowDirection direction, double ambient,
             const FdOptions &opts = {});

    std::size_t nx() const { return opts.nx; }
    std::size_t ny() const { return opts.ny; }

    /** Uniform total power spread over the whole junction plane. */
    std::vector<double> uniformPowerMap(double total_watts) const;

    /**
     * Power map with @p total_watts spread uniformly over a centered
     * square source of the given side (paper Fig. 3's 2 mm source).
     */
    std::vector<double> centerSourcePowerMap(double total_watts,
                                             double source_side) const;

    /**
     * Steady-state junction-plane temperatures (kelvin), one per
     * (nx x ny) column.
     * @param cell_powers watts per junction cell
     */
    std::vector<double>
    steadyJunctionTemperatures(const std::vector<double> &cell_powers) const;

    /**
     * Transient from ambient under a constant power map; samples the
     * junction plane every @p sample_interval.
     */
    std::vector<FdSample>
    transientFromAmbient(const std::vector<double> &cell_powers,
                         double duration, double sample_interval) const;

    /** Effective overall convective resistance 1/sum(h_i A_i), K/W. */
    double equivalentConvectiveResistance() const;

  private:
    std::size_t cellIndex(std::size_t ix, std::size_t iy,
                          std::size_t iz) const;
    std::size_t oilIndex(std::size_t ix, std::size_t iy) const;

    /** Expand junction cell powers to the full node vector. */
    std::vector<double>
    nodePowers(const std::vector<double> &cell_powers) const;

    FdOptions opts;
    double width, height, thickness;
    double ambient;
    double dx, dy, dz;
    std::size_t nodes;
    /**
     * Matrix-free (nz+1)-layer stencil: nz silicon slabs plus the
     * per-column oil-film layer on top (no lateral links there).
     * Node numbering is unchanged from the old CSR assembly:
     * cellIndex() for silicon, oilIndex() == layer nz of the stencil.
     */
    GridStencilOperator g;
    std::vector<double> cap;
    double convConductance = 0.0;
};

} // namespace irtherm

#endif // IRTHERM_REFSIM_FD_SOLVER_HH
