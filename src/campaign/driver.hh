/**
 * @file
 * Seeded randomized fault-campaign driver (FoundationDB-style
 * simulation testing, scaled to irtherm's surface).
 *
 * From a single 64-bit seed, each cycle derives an independent
 * SplitMix64 stream (seed, cycle index) and draws — in a fixed order,
 * before anything executes — a random-but-valid sweep plan, a random
 * IRTHERM_FAULTS spec over the fault-point catalog, and every
 * kill/resume parameter (where to stop, how many workers, who dies,
 * when). Because all draws happen up front, two runs with the same
 * seed generate byte-identical plans and fault specs no matter how
 * the runs themselves unfold.
 *
 * A cycle then runs one of two shapes:
 *
 *  - in-process: a single-worker sweep stopped partway (simulated
 *    kill), an *armed* resume (faults keep firing across the resume
 *    protocol: checkpoint rot, torn segments, corrupt lines), and a
 *    disarmed resume to completion;
 *  - multi-process: a real coordinator process and 1-3 real worker
 *    processes over loopback HTTP with the fault spec in their
 *    environment, SIGKILL delivered to a random victim (worker or
 *    the coordinator itself) at a random time, then a fresh disarmed
 *    coordinator + workers resuming to completion.
 *
 * After each cycle the invariant checker (campaign/invariants.hh)
 * must pass; a failing cycle dumps seed, generated plan, fault spec,
 * and a one-command replay line into <cycle dir>/repro.txt.
 */

#ifndef IRTHERM_CAMPAIGN_DRIVER_HH
#define IRTHERM_CAMPAIGN_DRIVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/invariants.hh"
#include "campaign/plan_gen.hh"

namespace irtherm::campaign
{

/** Campaign configuration. */
struct CampaignOptions
{
    /** The one input: everything else derives from it. */
    std::uint64_t seed = 0x1d5eedULL;
    /** Kill-and-resume cycles to run. */
    std::size_t cycles = 5;
    /** Stop starting new cycles once this much wall time has passed
     *  (0 = no budget). Never interrupts a running cycle. */
    double timeBudgetSeconds = 0.0;
    /** Campaign artifacts root; one subdirectory per cycle. */
    std::string outDir = "campaign_out";
    /** irtherm_cli binary for multi-process cycles; empty keeps the
     *  whole campaign in-process. */
    std::string cliPath;
    /** -1 = mixed (seed decides); 0 = in-process only; 1 = fleet
     *  only. Tests pin this to exercise one shape deterministically. */
    int forceKind = -1;
    /** Run only this cycle index (< 0 = all). Cycles are pure
     *  functions of (seed, index), so replaying one cycle of a failed
     *  campaign regenerates it exactly. */
    long onlyCycle = -1;
};

enum class CycleKind
{
    InProcess,
    MultiProcess
};

/**
 * Everything random about one cycle, drawn up front from the derived
 * stream. Exposed (with makeCycleSpec) so tests can assert that spec
 * generation is bit-replayable without running anything.
 */
struct CycleSpec
{
    std::size_t index = 0;
    CycleKind kind = CycleKind::InProcess;
    GeneratedPlan plan;
    std::string faultSpec;
    bool useCache = false;
    std::size_t segmentJobs = 2;
    /** In-process: stop the armed run after this many executions. */
    std::size_t stopAfter = 1;
    // Fleet-only knobs.
    int port = 0;
    std::size_t workers = 1;
    bool killCoordinator = false;
    std::size_t victimWorker = 0;
    double killDelaySeconds = 0.5;
};

/** Deterministically derive cycle @p index's spec. Pure. */
CycleSpec makeCycleSpec(const CampaignOptions &opts,
                        std::size_t index);

/** What one cycle did. */
struct CycleOutcome
{
    CycleSpec spec;
    InvariantReport report;
    /** Empty unless the cycle failed outside the invariant checker
     *  (spawn failure, unexpected exception, resume watchdog). */
    std::string error;
    bool passed = false;
    std::string dir; ///< the cycle's artifact directory
};

/** Whole-campaign verdict. */
struct CampaignSummary
{
    std::uint64_t seed = 0;
    std::size_t cyclesRun = 0;
    std::size_t cyclesPassed = 0;
    std::vector<CycleOutcome> outcomes;

    bool
    passed() const
    {
        return cyclesRun > 0 && cyclesPassed == cyclesRun;
    }
};

/** Run the campaign. Never throws for per-cycle failures — they land
 *  in the summary (and repro dumps); throws only for unusable
 *  configuration (e.g. an output directory that cannot be created). */
CampaignSummary runCampaign(const CampaignOptions &opts);

} // namespace irtherm::campaign

#endif // IRTHERM_CAMPAIGN_DRIVER_HH
