/**
 * @file
 * The invariant checker a campaign cycle runs after its
 * kill-and-resume sequence. Five properties, each of which earlier
 * PRs claim and targeted tests spot-check — the campaign asserts
 * them over *randomly composed* failures:
 *
 *  I1 zero-duplicate-work: the journal holds at most one row per
 *     scenario hash, no hash is sealed into two columnar segments,
 *     and every sealed row is also in the journal.
 *  I2 journaled-ok-preserved: every Ok row present before a resume
 *     is still present — byte-identical — after it; resume never
 *     loses or re-executes completed work.
 *  I3 aggregate-replay: the checkpoint fast path (checkpoint +
 *     segments + JSONL tail) reports the same row set and the same
 *     per-status counts as a full JSONL scan.
 *  I4 cache-bit-identity: every shared-cache entry is bit-identical
 *     (modulo timing/provenance) to the journaled result of the same
 *     scenario hash — a cache hit is indistinguishable from direct
 *     simulation.
 *  I5 disarmed-replay: two disarmed single-worker runs of the same
 *     generated plan produce bit-identical physics (normalized
 *     journals equal byte for byte).
 *
 * Normalization zeroes wall time, resource accounting, and worker
 * provenance — everything that legitimately differs between two
 * executions of the same scenario — and compares the rest of the
 * JSONL line exactly.
 */

#ifndef IRTHERM_CAMPAIGN_INVARIANTS_HH
#define IRTHERM_CAMPAIGN_INVARIANTS_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sweep/result_store.hh"

namespace irtherm::campaign
{

/** One named invariant verdict. */
struct InvariantCheck
{
    std::string name;
    bool passed = false;
    std::string detail;
};

/** The verdict list for one campaign cycle. */
struct InvariantReport
{
    std::vector<InvariantCheck> checks;

    void add(const std::string &name, bool passed,
             const std::string &detail = "");
    bool passed() const;
    /** Multi-line "  [PASS|FAIL] name: detail" block. */
    std::string summary() const;
};

/** Journal rows keyed by scenario hash. Unparsable lines are counted
 *  into @p skipped (when non-null), not thrown — a campaign journal
 *  legitimately holds fault-damaged lines until resume quarantines
 *  them. Duplicate hashes keep the first row (I1 reports them). */
std::map<std::string, sweep::JobResult>
loadJournalRows(const std::string &dir,
                std::size_t *skipped = nullptr);

/** The row's JSONL line with wall time, resources, and worker
 *  provenance zeroed — the bit-identity comparison form. */
std::string normalizedLine(const sweep::JobResult &row);

/** I1 over @p dir (journal + sealed segments). */
void checkNoDuplicateWork(const std::string &dir,
                          InvariantReport &report);

/** I2: @p before was captured mid-crash, @p after at completion. */
void checkJournaledOkPreserved(
    const std::map<std::string, sweep::JobResult> &before,
    const std::map<std::string, sweep::JobResult> &after,
    InvariantReport &report);

/** I3 over @p dir, via the read-only sweep/compact fast path vs a
 *  forced full scan. */
void checkAggregateReplay(const std::string &dir,
                          InvariantReport &report);

/** I4: every entry of @p cacheDir vs the matching row in @p rows. */
void checkCacheBitIdentity(
    const std::string &cacheDir,
    const std::map<std::string, sweep::JobResult> &rows,
    InvariantReport &report);

/** I5: @p a and @p b are normalized-bit-identical journals. @p label
 *  names the comparison in the verdict (e.g. "ref_a-vs-ref_b"). */
void checkBitIdenticalReplay(
    const std::map<std::string, sweep::JobResult> &a,
    const std::map<std::string, sweep::JobResult> &b,
    const std::string &label, InvariantReport &report);

} // namespace irtherm::campaign

#endif // IRTHERM_CAMPAIGN_INVARIANTS_HH
