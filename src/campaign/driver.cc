#include "campaign/driver.hh"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "base/errors.hh"
#include "base/fault_injection.hh"
#include "base/logging.hh"
#include "campaign/fault_gen.hh"
#include "fabric/http_client.hh"
#include "fabric/result_cache.hh"
#include "obs/event_trace.hh"
#include "obs/export.hh"
#include "obs/span.hh"
#include "sweep/runner.hh"

extern char **environ;

namespace irtherm::campaign
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

void
sleepSeconds(double s)
{
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

/** Arm the process-global injector for a scope; disarm on exit. */
class ArmedFaults
{
  public:
    explicit ArmedFaults(const std::string &spec)
    {
        FaultInjector::global().arm(spec);
    }
    ~ArmedFaults() { FaultInjector::global().disarm(); }
    ArmedFaults(const ArmedFaults &) = delete;
    ArmedFaults &operator=(const ArmedFaults &) = delete;
};

// -----------------------------------------------------------------
// Child-process plumbing for multi-process cycles
// -----------------------------------------------------------------

struct ChildProc
{
    pid_t pid = -1;
    std::string name;
    bool running = false;
    int status = 0;
};

/** Spawn @p argv with stdout+stderr appended to @p logPath and
 *  IRTHERM_FAULTS set to @p faults (cleared when empty). */
ChildProc
spawnChild(const std::vector<std::string> &argvStrs,
           const std::string &name, const std::string &logPath,
           const std::string &faults)
{
    std::vector<char *> argv;
    argv.reserve(argvStrs.size() + 1);
    for (const std::string &s : argvStrs)
        argv.push_back(const_cast<char *>(s.c_str()));
    argv.push_back(nullptr);

    std::vector<std::string> envStrs;
    for (char **e = environ; *e != nullptr; ++e) {
        if (std::strncmp(*e, "IRTHERM_FAULTS=", 15) == 0)
            continue;
        envStrs.emplace_back(*e);
    }
    if (!faults.empty())
        envStrs.push_back("IRTHERM_FAULTS=" + faults);
    std::vector<char *> envp;
    envp.reserve(envStrs.size() + 1);
    for (const std::string &s : envStrs)
        envp.push_back(const_cast<char *>(s.c_str()));
    envp.push_back(nullptr);

    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    posix_spawn_file_actions_addopen(
        &fa, 1, logPath.c_str(), O_WRONLY | O_CREAT | O_APPEND,
        0644);
    posix_spawn_file_actions_adddup2(&fa, 1, 2);

    ChildProc child;
    child.name = name;
    const int rc =
        ::posix_spawn(&child.pid, argvStrs[0].c_str(), &fa,
                      nullptr, argv.data(), envp.data());
    posix_spawn_file_actions_destroy(&fa);
    if (rc != 0)
        ioError("campaign: cannot spawn '", argvStrs[0],
                "': ", std::strerror(rc));
    child.running = true;
    return child;
}

/** Reap-if-exited; returns true while the child is still running. */
bool
pollChild(ChildProc &c)
{
    if (!c.running)
        return false;
    int status = 0;
    const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
    if (r == c.pid) {
        c.running = false;
        c.status = status;
    }
    return c.running;
}

void
killChild(ChildProc &c, int sig = SIGKILL)
{
    if (c.running)
        ::kill(c.pid, sig);
}

/** Blocking reap. */
void
reapChild(ChildProc &c)
{
    if (!c.running)
        return;
    int status = 0;
    ::waitpid(c.pid, &status, 0);
    c.status = status;
    c.running = false;
}

/** True once GET /healthz on @p port answers 200; false if the
 *  coordinator exits or @p timeoutSeconds passes first. */
bool
waitHealthz(int port, ChildProc &coord, double timeoutSeconds)
{
    const Clock::time_point start = Clock::now();
    while (secondsSince(start) < timeoutSeconds) {
        if (!pollChild(coord))
            return false;
        try {
            const fabric::HttpReply r = fabric::httpRequest(
                "127.0.0.1", port, "GET", "/healthz", "", 2.0);
            if (r.status == 200)
                return true;
        } catch (const FatalError &) {
            // Not listening yet.
        }
        sleepSeconds(0.1);
    }
    return false;
}

/**
 * Wait for the fleet to drain. The kill schedule (victim + delay)
 * runs inside this loop. A coordinator that outlives every worker by
 * @p orphanGraceSeconds can never finish (nobody is left to lease
 * jobs), so it is killed — exactly the crash the resume phase
 * exists to recover from. @p deadlineSeconds is the hard watchdog;
 * returns false if it fired.
 */
bool
waitFleet(ChildProc &coordinator, std::vector<ChildProc> &workers,
          ChildProc *victim, double killDelaySeconds,
          double deadlineSeconds, double orphanGraceSeconds = 8.0)
{
    const Clock::time_point start = Clock::now();
    bool killed = victim == nullptr;
    double workersGoneAt = -1.0;
    while (true) {
        const double elapsed = secondsSince(start);
        if (!killed && elapsed >= killDelaySeconds) {
            inform("campaign: SIGKILL -> ", victim->name);
            IRTHERM_EVENT("campaign.kill", {"victim", victim->name},
                          {"after_s", elapsed});
            killChild(*victim);
            killed = true;
        }
        bool anyRunning = pollChild(coordinator);
        bool workersAlive = false;
        for (ChildProc &w : workers) {
            if (pollChild(w))
                workersAlive = anyRunning = true;
        }
        if (!anyRunning)
            return true;
        if (elapsed > deadlineSeconds) {
            warn("campaign: fleet watchdog fired after ",
                 deadlineSeconds, " s; killing survivors");
            killChild(coordinator);
            for (ChildProc &w : workers)
                killChild(w);
            reapChild(coordinator);
            for (ChildProc &w : workers)
                reapChild(w);
            return false;
        }
        if (coordinator.running && !workersAlive) {
            if (workersGoneAt < 0.0) {
                workersGoneAt = elapsed;
            } else if (elapsed - workersGoneAt >
                       orphanGraceSeconds) {
                inform("campaign: coordinator orphaned (all "
                       "workers gone); killing it");
                killChild(coordinator);
                reapChild(coordinator);
            }
        } else {
            workersGoneAt = -1.0;
        }
        sleepSeconds(0.05);
    }
}

/** Launch a coordinator process and wait until it serves /healthz.
 *  Retries on nearby ports (bind collisions with unrelated
 *  processes); the retry offset is deterministic, not drawn. */
ChildProc
startCoordinator(const CampaignOptions &opts,
                 const CycleSpec &spec, const std::string &dir,
                 int basePort, bool resume,
                 const std::string &faults, int *boundPort)
{
    const std::string planPath =
        (std::filesystem::path(dir) / "plan.json").string();
    const std::string fleetDir =
        (std::filesystem::path(dir) / "fleet").string();
    const std::string cacheDir =
        (std::filesystem::path(dir) / "cache").string();
    for (int attempt = 0; attempt < 5; ++attempt) {
        const int port = basePort + attempt * 17;
        std::vector<std::string> argv = {
            opts.cliPath,
            "sweep",
            planPath,
            "--out",
            fleetDir,
            "--coordinate",
            std::to_string(port),
            "--lease-ttl",
            "2",
            "--lease-jobs",
            "2",
            "--segment-jobs",
            std::to_string(spec.segmentJobs),
            "--cache",
            cacheDir,
        };
        if (resume)
            argv.push_back("--resume");
        ChildProc coord = spawnChild(
            argv, resume ? "coordinator-resume" : "coordinator",
            (std::filesystem::path(dir) /
             (resume ? "coordinator_resume.log"
                     : "coordinator.log"))
                .string(),
            faults);
        if (waitHealthz(port, coord, 20.0)) {
            *boundPort = port;
            return coord;
        }
        if (coord.running) {
            killChild(coord);
            reapChild(coord);
        } else if (resume && WIFEXITED(coord.status)) {
            // A resume coordinator with nothing left to serve can
            // finish before /healthz answers; that is a completed
            // run, not a bind failure.
            *boundPort = port;
            return coord;
        }
        warn("campaign: coordinator did not serve on port ", port,
             "; retrying");
    }
    ioError("campaign: coordinator failed to start after 5 port "
            "attempts");
}

ChildProc
startWorker(const CampaignOptions &opts, const std::string &dir,
            int port, const std::string &name,
            const std::string &faults)
{
    const std::vector<std::string> argv = {
        opts.cliPath, "worker",           "--connect",
        "127.0.0.1:" + std::to_string(port), "--name", name,
    };
    return spawnChild(
        argv, name,
        (std::filesystem::path(dir) / (name + ".log")).string(),
        faults);
}

// -----------------------------------------------------------------
// Cycle execution
// -----------------------------------------------------------------

sweep::SweepOptions
baseSweepOptions(const std::string &outDir,
                 const CycleSpec &spec)
{
    sweep::SweepOptions so;
    so.outDir = outDir;
    so.workers = 1;
    so.segmentJobs = spec.segmentJobs;
    so.writeReports = false;
    return so;
}

void
attachCache(sweep::SweepOptions &so, fabric::ResultCache *cache,
            bool store)
{
    so.sharedCacheLookup = [cache](const std::string &hash,
                                   sweep::JobResult &out) {
        return cache->lookup(hash, out);
    };
    if (store) {
        so.sharedCacheStore = [cache](const sweep::JobResult &r) {
            cache->store(r);
        };
    }
}

/** The two disarmed single-worker reference runs plus the
 *  bit-identity verdict (I5). Returns ref_a's rows. */
std::map<std::string, sweep::JobResult>
runReferencePair(const CycleSpec &spec, const std::string &dir,
                 InvariantReport &report)
{
    std::map<std::string, sweep::JobResult> rowsA;
    for (const char *tag : {"ref_a", "ref_b"}) {
        const std::string refDir =
            (std::filesystem::path(dir) / tag).string();
        sweep::SweepOptions so = baseSweepOptions(refDir, spec);
        sweep::runSweep(spec.plan.plan, so);
        if (std::strcmp(tag, "ref_a") == 0)
            rowsA = loadJournalRows(refDir);
    }
    const auto rowsB = loadJournalRows(
        (std::filesystem::path(dir) / "ref_b").string());
    checkBitIdenticalReplay(rowsA, rowsB, "ref_a-vs-ref_b",
                            report);
    return rowsA;
}

/** I4 when the cycle had a shared cache: entries must match the
 *  journal, and a fresh run with lookup enabled must be answered
 *  from the cache. */
void
checkSharedCache(const CycleSpec &spec, const std::string &dir,
                 fabric::ResultCache *cache,
                 const std::map<std::string, sweep::JobResult>
                     &finalRows,
                 InvariantReport &report)
{
    const std::string cacheDir =
        (std::filesystem::path(dir) / "cache").string();
    checkCacheBitIdentity(cacheDir, finalRows, report);

    const std::string rerunDir =
        (std::filesystem::path(dir) / "cache_rerun").string();
    sweep::SweepOptions so = baseSweepOptions(rerunDir, spec);
    attachCache(so, cache, /*store=*/false);
    const sweep::SweepSummary sum =
        sweep::runSweep(spec.plan.plan, so);
    report.add("cache-serves-hits", sum.sharedCacheHits > 0,
               std::to_string(sum.sharedCacheHits) + " of " +
                   std::to_string(sum.total) +
                   " jobs answered from the shared cache");
}

void
runInProcessCycle(const CycleSpec &spec, const std::string &dir,
                  CycleOutcome &outcome)
{
    const std::string runDir =
        (std::filesystem::path(dir) / "run").string();
    std::unique_ptr<fabric::ResultCache> cache;
    if (spec.useCache)
        cache = std::make_unique<fabric::ResultCache>(
            (std::filesystem::path(dir) / "cache").string());

    sweep::SweepOptions so = baseSweepOptions(runDir, spec);
    if (cache)
        attachCache(so, cache.get(), /*store=*/true);

    std::map<std::string, sweep::JobResult> midRows;
    {
        ArmedFaults armed(spec.faultSpec);
        obs::ScopedSpan phase("campaign.phase.armed");
        phase.attr("faults", spec.faultSpec);
        // Armed phase A: run partway and "die".
        sweep::SweepOptions a = so;
        a.stopAfter = spec.stopAfter;
        sweep::runSweep(spec.plan.plan, a);
        midRows = loadJournalRows(runDir);
        // Armed phase B: resume WITH faults still firing — the
        // resume protocol itself (checkpoint parse, segment reads,
        // journal appends) is inside the blast radius.
        IRTHERM_EVENT("campaign.resume", {"armed", "true"});
        sweep::SweepOptions b = so;
        b.resume = true;
        sweep::runSweep(spec.plan.plan, b);
    }
    // Disarmed resume to completion.
    IRTHERM_EVENT("campaign.resume", {"armed", "false"});
    sweep::SweepOptions c = so;
    {
        obs::ScopedSpan phase("campaign.phase.resume");
        c.resume = true;
        sweep::runSweep(spec.plan.plan, c);
    }

    obs::ScopedSpan verify("campaign.phase.verify");
    const auto finalRows = loadJournalRows(runDir);
    InvariantReport &report = outcome.report;
    report.add("journal-complete",
               finalRows.size() == spec.plan.plan.jobCount(),
               std::to_string(finalRows.size()) + " of " +
                   std::to_string(spec.plan.plan.jobCount()) +
                   " jobs journaled after resume");
    checkNoDuplicateWork(runDir, report);
    checkJournaledOkPreserved(midRows, finalRows, report);
    checkAggregateReplay(runDir, report);
    if (cache)
        checkSharedCache(spec, dir, cache.get(), finalRows,
                         report);
    else
        report.add("cache-bit-identity", true,
                   "no shared cache this cycle (not exercised)");
    runReferencePair(spec, dir, report);
}

void
runFleetCycle(const CampaignOptions &opts, const CycleSpec &spec,
              const std::string &dir, CycleOutcome &outcome)
{
    const std::string fleetDir =
        (std::filesystem::path(dir) / "fleet").string();
    {
        std::ofstream plan(
            (std::filesystem::path(dir) / "plan.json").string());
        plan << spec.plan.json;
    }

    // Armed phase: real processes, fault spec in every child's
    // environment, SIGKILL on a schedule.
    std::map<std::string, sweep::JobResult> midRows;
    {
        obs::ScopedSpan phase("campaign.phase.armed-fleet");
        phase.attr("faults", spec.faultSpec);
        phase.attr("workers", static_cast<double>(spec.workers));
        int port = 0;
        ChildProc coordinator =
            startCoordinator(opts, spec, dir, spec.port,
                             /*resume=*/false, spec.faultSpec, &port);
        std::vector<ChildProc> workers;
        for (std::size_t i = 0; i < spec.workers; ++i)
            workers.push_back(startWorker(opts, dir, port,
                                          "w" + std::to_string(i),
                                          spec.faultSpec));
        IRTHERM_EVENT("campaign.spawn",
                      {"workers", static_cast<double>(spec.workers)},
                      {"port", static_cast<double>(port)});
        ChildProc *victim = spec.killCoordinator
                                ? &coordinator
                                : &workers[spec.victimWorker %
                                           workers.size()];
        waitFleet(coordinator, workers, victim,
                  spec.killDelaySeconds, 90.0);

        midRows = loadJournalRows(fleetDir);
    }

    // Disarmed resume fleet: a fresh coordinator picks up the
    // journal; two fresh workers finish the remainder.
    bool drained = false;
    {
        obs::ScopedSpan phase("campaign.phase.resume-fleet");
        IRTHERM_EVENT("campaign.resume", {"armed", "false"});
        int resumePort = 0;
        ChildProc resumeCoord = startCoordinator(
            opts, spec, dir, spec.port + 1000, /*resume=*/true, "",
            &resumePort);
        std::vector<ChildProc> resumeWorkers;
        if (resumeCoord.running) {
            for (std::size_t i = 0; i < 2; ++i)
                resumeWorkers.push_back(
                    startWorker(opts, dir, resumePort,
                                "r" + std::to_string(i), ""));
        }
        drained = waitFleet(resumeCoord, resumeWorkers,
                            nullptr, 0.0, 120.0);
    }
    if (!drained) {
        outcome.error = "resume fleet did not drain before the "
                        "watchdog deadline";
        return;
    }

    obs::ScopedSpan verify("campaign.phase.verify");
    const auto finalRows = loadJournalRows(fleetDir);
    InvariantReport &report = outcome.report;
    report.add("journal-complete",
               finalRows.size() == spec.plan.plan.jobCount(),
               std::to_string(finalRows.size()) + " of " +
                   std::to_string(spec.plan.plan.jobCount()) +
                   " jobs journaled after resume");
    checkNoDuplicateWork(fleetDir, report);
    checkJournaledOkPreserved(midRows, finalRows, report);
    checkAggregateReplay(fleetDir, report);

    fabric::ResultCache cache(
        (std::filesystem::path(dir) / "cache").string());
    checkSharedCache(spec, dir, &cache, finalRows, report);

    const auto refRows = runReferencePair(spec, dir, report);

    // Fleet-specific teeth: rows the fleet executed cleanly (one
    // attempt, no fallback) must be bit-identical to the local
    // single-worker reference — a distributed run is just a faster
    // way to compute the same numbers.
    std::size_t compared = 0;
    std::string issues;
    for (const auto &[hash, row] : finalRows) {
        if (row.status != sweep::JobStatus::Ok ||
            row.attempts != 1 || row.fallbackTier != 0)
            continue;
        const auto it = refRows.find(hash);
        if (it == refRows.end()) {
            issues += (issues.empty() ? "" : "; ") + hash +
                      " missing from the reference run";
            continue;
        }
        ++compared;
        if (normalizedLine(row) != normalizedLine(it->second))
            issues += (issues.empty() ? "" : "; ") + hash +
                      " differs from the reference run";
    }
    std::string detail =
        std::to_string(compared) +
        " clean fleet rows compared against the local reference";
    if (!issues.empty())
        detail += "; " + issues;
    report.add("fleet-matches-local-reference",
               issues.empty() && compared > 0, detail);
}

void
writeRepro(const CampaignOptions &opts, const CycleOutcome &oc)
{
    std::ofstream repro(
        (std::filesystem::path(oc.dir) / "repro.txt").string());
    repro << "irtherm fault campaign failure\n";
    repro << "seed:  " << opts.seed << "\n";
    repro << "cycle: " << oc.spec.index << " ("
          << (oc.spec.kind == CycleKind::InProcess
                  ? "in-process"
                  : "multi-process")
          << ")\n";
    repro << "fault spec: " << oc.spec.faultSpec << "\n";
    if (!oc.error.empty())
        repro << "error: " << oc.error << "\n";
    repro << "invariants:\n" << oc.report.summary();
    repro << "\nreplay exactly this cycle with:\n";
    repro << "  irtherm_campaign --seed " << opts.seed
          << " --cycles " << (oc.spec.index + 1)
          << " --only-cycle " << oc.spec.index;
    if (!opts.cliPath.empty())
        repro << " --cli " << opts.cliPath;
    repro << "\n\ngenerated plan:\n" << oc.spec.plan.json;
}

} // namespace

CycleSpec
makeCycleSpec(const CampaignOptions &opts, std::size_t index)
{
    SplitMix64 rng = SplitMix64(opts.seed).child(index);
    CycleSpec spec;
    spec.index = index;

    if (opts.forceKind == 0) {
        spec.kind = CycleKind::InProcess;
    } else if (opts.forceKind == 1) {
        spec.kind = CycleKind::MultiProcess;
    } else if (opts.cliPath.empty()) {
        spec.kind = CycleKind::InProcess;
    } else {
        spec.kind = rng.chance(0.3) ? CycleKind::MultiProcess
                                    : CycleKind::InProcess;
    }
    const bool fleet = spec.kind == CycleKind::MultiProcess;

    spec.plan = generatePlan(rng, /*fleetSafe=*/fleet);
    spec.useCache = fleet || rng.chance(0.5);

    using namespace faultpoint;
    std::vector<const char *> eligible;
    if (fleet) {
        eligible = {CgNan,           CgDiverge,
                    JobStall,        JournalCorrupt,
                    JournalTruncate, JournalTornSegment,
                    LeaseLost,       WorkerDie,
                    CompleteDup};
    } else {
        eligible = {CgNan,           CgDiverge,
                    MgDiverge,       ImpulseCorrupt,
                    JobStall,        JournalCorrupt,
                    JournalTruncate, JournalTornSegment,
                    CkptCorrupt};
    }
    if (spec.useCache)
        eligible.push_back(CacheCorrupt);
    spec.faultSpec = generateFaultSpec(rng, eligible);

    spec.segmentJobs =
        static_cast<std::size_t>(rng.range(2, 4));
    const std::size_t jobs = spec.plan.plan.jobCount();
    spec.stopAfter =
        jobs >= 2 ? static_cast<std::size_t>(rng.range(1, jobs - 1))
                  : 1;
    spec.port = 20000 + static_cast<int>(rng.index(20000));
    spec.workers = 1 + static_cast<std::size_t>(rng.range(0, 2));
    spec.killCoordinator = rng.chance(0.35);
    spec.victimWorker = rng.index(spec.workers);
    spec.killDelaySeconds = rng.uniform(0.2, 1.2);
    return spec;
}

CampaignSummary
runCampaign(const CampaignOptions &opts)
{
    if (opts.cycles == 0)
        configError("campaign: --cycles must be at least 1");
    std::error_code ec;
    std::filesystem::create_directories(opts.outDir, ec);
    if (ec)
        ioError("campaign: cannot create output directory '",
                opts.outDir, "': ", ec.message());

    CampaignSummary summary;
    summary.seed = opts.seed;
    const Clock::time_point start = Clock::now();

    for (std::size_t i = 0; i < opts.cycles; ++i) {
        if (opts.onlyCycle >= 0 &&
            i != static_cast<std::size_t>(opts.onlyCycle))
            continue;
        if (opts.timeBudgetSeconds > 0.0 &&
            summary.cyclesRun > 0 &&
            secondsSince(start) >= opts.timeBudgetSeconds) {
            inform("campaign: time budget (",
                   opts.timeBudgetSeconds,
                   " s) exhausted after ", summary.cyclesRun,
                   " cycles");
            break;
        }

        CycleOutcome oc;
        oc.spec = makeCycleSpec(opts, i);
        if (oc.spec.kind == CycleKind::MultiProcess &&
            opts.cliPath.empty()) {
            // Unreachable via makeCycleSpec's own logic unless
            // forceKind demanded a fleet without a CLI.
            configError("campaign: multi-process cycles need "
                        "--cli <irtherm_cli path>");
        }

        char tag[32];
        std::snprintf(tag, sizeof(tag), "cycle_%03zu", i);
        oc.dir = (std::filesystem::path(opts.outDir) / tag)
                     .string();
        std::filesystem::remove_all(oc.dir, ec);
        std::filesystem::create_directories(oc.dir, ec);

        inform("campaign: cycle ", i, " (",
               oc.spec.kind == CycleKind::InProcess
                   ? "in-process"
                   : "multi-process",
               "): plan of ", oc.spec.plan.plan.jobCount(),
               " jobs, faults \"", oc.spec.faultSpec, "\"");
        // Each cycle gets a fresh timeline: a failing cycle dumps
        // exactly its own phase spans next to repro.txt.
        obs::SpanRecorder::global().clear();
        obs::SpanRecorder::global().setEnabled(true);
        obs::EventTrace::global().clear();
        obs::EventTrace::global().setEnabled(true);
        try {
            obs::ScopedSpan cycleSpan("campaign.cycle");
            cycleSpan.attr("index", static_cast<double>(i));
            cycleSpan.attr("kind",
                           oc.spec.kind == CycleKind::InProcess
                               ? "in-process"
                               : "multi-process");
            cycleSpan.attr("faults", oc.spec.faultSpec);
            if (oc.spec.kind == CycleKind::InProcess)
                runInProcessCycle(oc.spec, oc.dir, oc);
            else
                runFleetCycle(opts, oc.spec, oc.dir, oc);
        } catch (const std::exception &e) {
            oc.error = e.what();
        }
        FaultInjector::global().disarm();

        oc.passed = oc.error.empty() && oc.report.passed();
        IRTHERM_EVENT("campaign.verdict",
                      {"cycle", static_cast<double>(i)},
                      {"passed", oc.passed ? "true" : "false"});
        ++summary.cyclesRun;
        if (oc.passed) {
            ++summary.cyclesPassed;
        } else {
            writeRepro(opts, oc);
            // Dump the cycle's timeline next to the repro recipe so
            // a nightly failure ships its own phase-by-phase trace.
            std::ofstream trace(
                (std::filesystem::path(oc.dir) / "cycle.trace.json")
                    .string());
            trace << obs::spansToTraceJson(
                obs::SpanRecorder::global(),
                &obs::EventTrace::global());
            warn("campaign: cycle ", i, " FAILED (repro in ",
                 oc.dir, "/repro.txt, timeline in ", oc.dir,
                 "/cycle.trace.json)");
        }
        inform("campaign: cycle ", i,
               oc.passed ? " passed" : " FAILED", "\n",
               oc.report.summary());
        summary.outcomes.push_back(std::move(oc));
    }
    return summary;
}

} // namespace irtherm::campaign
