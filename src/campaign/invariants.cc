#include "campaign/invariants.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "base/errors.hh"
#include "sweep/compact.hh"
#include "sweep/json.hh"
#include "sweep/segment.hh"

namespace irtherm::campaign
{

namespace
{

using sweep::JobResult;
using sweep::JobStatus;

std::string
journalPath(const std::string &dir)
{
    return (std::filesystem::path(dir) / "journal.jsonl").string();
}

/** Per-status counts of a row map, as "ok=3 failed=1 ...". */
std::string
statusCounts(const std::map<std::string, JobResult> &rows)
{
    std::size_t counts[4] = {0, 0, 0, 0};
    for (const auto &[hash, row] : rows)
        ++counts[static_cast<std::size_t>(row.status)];
    return "ok=" + std::to_string(counts[0]) +
           " failed=" + std::to_string(counts[1]) +
           " timeout=" + std::to_string(counts[2]) +
           " hung=" + std::to_string(counts[3]);
}

} // namespace

void
InvariantReport::add(const std::string &name, bool ok,
                     const std::string &detail)
{
    checks.push_back({name, ok, detail});
}

bool
InvariantReport::passed() const
{
    return !checks.empty() &&
           std::all_of(checks.begin(), checks.end(),
                       [](const InvariantCheck &c) {
                           return c.passed;
                       });
}

std::string
InvariantReport::summary() const
{
    std::string out;
    for (const InvariantCheck &c : checks) {
        out += c.passed ? "  [PASS] " : "  [FAIL] ";
        out += c.name;
        if (!c.detail.empty())
            out += ": " + c.detail;
        out += "\n";
    }
    return out;
}

std::map<std::string, JobResult>
loadJournalRows(const std::string &dir, std::size_t *skipped)
{
    std::map<std::string, JobResult> rows;
    if (skipped)
        *skipped = 0;
    std::ifstream in(journalPath(dir));
    if (!in)
        return rows;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        try {
            JobResult r = JobResult::fromJsonLine(
                line,
                dir + " line " + std::to_string(lineno));
            rows.emplace(r.hash, std::move(r));
        } catch (const FatalError &) {
            if (skipped)
                ++*skipped;
        }
    }
    return rows;
}

std::string
normalizedLine(const JobResult &row)
{
    JobResult r = row;
    r.wallSeconds = 0.0;
    r.resources = sweep::JobResources{};
    r.worker.clear();
    r.leaseRenewals = 0;
    return r.toJsonLine();
}

void
checkNoDuplicateWork(const std::string &dir,
                     InvariantReport &report)
{
    // Journal side: at most one parsable line per hash.
    std::map<std::string, std::size_t> seen;
    std::size_t parsable = 0;
    {
        std::ifstream in(journalPath(dir));
        std::string line;
        std::size_t lineno = 0;
        while (in && std::getline(in, line)) {
            ++lineno;
            if (line.empty())
                continue;
            try {
                const JobResult r = JobResult::fromJsonLine(
                    line,
                    dir + " line " + std::to_string(lineno));
                ++seen[r.hash];
                ++parsable;
            } catch (const FatalError &) {
                // Fault-damaged line; resume quarantines it.
            }
        }
    }
    std::string dups;
    for (const auto &[hash, count] : seen) {
        if (count > 1)
            dups += (dups.empty() ? "" : ", ") + hash + " x" +
                    std::to_string(count);
    }

    // Segment side: a hash sealed into two segments would be the
    // same duplicate in columnar form, and a sealed row missing from
    // the journal would mean the JSONL debug sink lost a job.
    std::map<std::string, std::string> sealedIn;
    std::string segmentIssues;
    const sweep::SegmentScan scan = sweep::scanSegments(dir);
    for (const auto &[index, path] : scan.sealed) {
        std::vector<JobResult> segRows;
        try {
            segRows = sweep::readSegmentFile(path);
        } catch (const FatalError &e) {
            segmentIssues += (segmentIssues.empty() ? "" : "; ") +
                             path + " unreadable (" + e.what() +
                             ")";
            continue;
        }
        for (const JobResult &r : segRows) {
            const auto [it, inserted] =
                sealedIn.emplace(r.hash, path);
            if (!inserted) {
                segmentIssues +=
                    (segmentIssues.empty() ? "" : "; ") + r.hash +
                    " sealed in both " + it->second + " and " +
                    path;
            }
            if (seen.find(r.hash) == seen.end()) {
                segmentIssues +=
                    (segmentIssues.empty() ? "" : "; ") + r.hash +
                    " sealed in " + path +
                    " but absent from the journal";
            }
        }
    }

    const bool ok = dups.empty() && segmentIssues.empty();
    std::string detail = std::to_string(parsable) +
                         " journal rows, " +
                         std::to_string(scan.sealed.size()) +
                         " sealed segments";
    if (!dups.empty())
        detail += "; duplicate hashes: " + dups;
    if (!segmentIssues.empty())
        detail += "; " + segmentIssues;
    report.add("zero-duplicate-work", ok, detail);
}

void
checkJournaledOkPreserved(
    const std::map<std::string, JobResult> &before,
    const std::map<std::string, JobResult> &after,
    InvariantReport &report)
{
    std::size_t okBefore = 0;
    std::string lost;
    for (const auto &[hash, row] : before) {
        if (row.status != JobStatus::Ok)
            continue;
        ++okBefore;
        const auto it = after.find(hash);
        if (it == after.end()) {
            lost += (lost.empty() ? "" : ", ") + hash + " lost";
        } else if (it->second.toJsonLine() != row.toJsonLine()) {
            lost += (lost.empty() ? "" : ", ") + hash +
                    " rewritten";
        }
    }
    std::string detail =
        std::to_string(okBefore) + " ok rows before resume, " +
        std::to_string(after.size()) + " rows after";
    if (!lost.empty())
        detail += "; " + lost;
    report.add("journaled-ok-preserved", lost.empty(), detail);
}

void
checkAggregateReplay(const std::string &dir,
                     InvariantReport &report)
{
    sweep::JournalData fast;
    sweep::JournalData full;
    try {
        fast = sweep::readJournal(dir, false);
        full = sweep::readJournal(dir, true);
    } catch (const FatalError &e) {
        report.add("aggregate-replay", false,
                   std::string("readJournal threw: ") + e.what());
        return;
    }

    std::string issues;
    if (fast.rows.size() != full.rows.size()) {
        issues += "row count " + std::to_string(fast.rows.size()) +
                  " (fast) vs " + std::to_string(full.rows.size()) +
                  " (full scan)";
    } else {
        for (std::size_t i = 0; i < fast.rows.size(); ++i) {
            if (normalizedLine(fast.rows[i]) !=
                normalizedLine(full.rows[i])) {
                issues += (issues.empty() ? "" : "; ") + std::string(
                    "row mismatch at hash ") + fast.rows[i].hash;
                break;
            }
        }
    }

    // Counts inside the aggregate documents themselves: the
    // checkpoint-restored state must agree with the recomputed one.
    auto counts = [&](const std::string &json,
                      const char *which) -> std::string {
        const sweep::JsonValue doc = sweep::parseJson(
            json, std::string("aggregates (") + which + ")");
        const sweep::JsonValue &states = doc.at("states");
        std::string out =
            "jobs=" + std::to_string(static_cast<std::uint64_t>(
                          doc.at("jobs").number));
        for (const char *k : {"ok", "failed", "timeout", "hung"})
            out += std::string(" ") + k + "=" +
                   std::to_string(static_cast<std::uint64_t>(
                       states.at(k).number));
        return out;
    };
    std::string fastCounts;
    std::string fullCounts;
    try {
        fastCounts = counts(fast.aggregatesJson, "fast");
        fullCounts = counts(full.aggregatesJson, "full");
    } catch (const FatalError &e) {
        issues += (issues.empty() ? "" : "; ") +
                  std::string("bad aggregates json: ") + e.what();
    }
    if (fastCounts != fullCounts) {
        issues += (issues.empty() ? "" : "; ") + std::string(
            "counts diverge: ") + fastCounts + " vs " + fullCounts;
    }

    std::string detail = fastCounts;
    detail += fast.fromCheckpoint ? " (via checkpoint)"
                                  : " (no checkpoint fast path)";
    if (!issues.empty())
        detail += "; " + issues;
    report.add("aggregate-replay", issues.empty(), detail);
}

void
checkCacheBitIdentity(
    const std::string &cacheDir,
    const std::map<std::string, JobResult> &rows,
    InvariantReport &report)
{
    std::vector<std::string> entries;
    std::error_code ec;
    for (const auto &e : std::filesystem::directory_iterator(
             cacheDir, ec)) {
        if (e.path().extension() == ".json")
            entries.push_back(e.path().string());
    }
    std::sort(entries.begin(), entries.end());

    std::size_t compared = 0;
    std::string issues;
    for (const std::string &path : entries) {
        std::ifstream in(path);
        std::string line;
        std::getline(in, line);
        JobResult entry;
        try {
            entry = JobResult::fromJsonLine(
                line, "cache entry " + path);
        } catch (const FatalError &e2) {
            issues += (issues.empty() ? "" : "; ") + path +
                      " unparsable (" + e2.what() + ")";
            continue;
        }
        const auto it = rows.find(entry.hash);
        if (it == rows.end())
            continue; // a different plan's result; not ours to judge
        ++compared;
        if (normalizedLine(entry) != normalizedLine(it->second)) {
            issues += (issues.empty() ? "" : "; ") + entry.hash +
                      " differs from its journaled result";
        }
    }

    std::string detail = std::to_string(compared) + " of " +
                         std::to_string(entries.size()) +
                         " cache entries matched against the "
                         "journal";
    if (!issues.empty())
        detail += "; " + issues;
    report.add("cache-bit-identity", issues.empty(), detail);
}

void
checkBitIdenticalReplay(
    const std::map<std::string, JobResult> &a,
    const std::map<std::string, JobResult> &b,
    const std::string &label, InvariantReport &report)
{
    std::string issues;
    if (a.size() != b.size()) {
        issues = "row counts differ: " + std::to_string(a.size()) +
                 " vs " + std::to_string(b.size());
    } else if (a.empty()) {
        issues = "no rows to compare";
    } else {
        for (const auto &[hash, row] : a) {
            const auto it = b.find(hash);
            if (it == b.end()) {
                issues += (issues.empty() ? "" : "; ") + hash +
                          " missing from the second run";
                continue;
            }
            if (normalizedLine(row) !=
                normalizedLine(it->second)) {
                issues += (issues.empty() ? "" : "; ") + hash +
                          " differs between runs";
            }
        }
    }
    std::string detail = label + ": " + std::to_string(a.size()) +
                         " rows (" + statusCounts(a) + ")";
    if (!issues.empty())
        detail += "; " + issues;
    report.add("disarmed-replay(" + label + ")", issues.empty(),
               detail);
}

} // namespace irtherm::campaign
