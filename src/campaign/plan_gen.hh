/**
 * @file
 * Random-but-valid sweep plan generation for fault campaigns.
 *
 * A campaign cycle needs a plan that is (a) cheap enough to run many
 * times per cycle (armed run, armed resume, disarmed resume, two
 * disarmed reference runs, a cache re-run), (b) rich enough to cover
 * the solver/preconditioner/superposition configuration space, and
 * (c) optionally *fleet-safe*: every job on a distinct stack hash, so
 * no warm-start or superposition coupling between jobs and per-job
 * results are bit-identical no matter which worker executes them in
 * what order — the precondition for comparing a distributed run's
 * journal against a single-process reference.
 *
 * All randomness flows through the caller's SplitMix64, so a plan is
 * a pure function of the stream position: the same seed regenerates
 * the identical plan JSON byte for byte.
 */

#ifndef IRTHERM_CAMPAIGN_PLAN_GEN_HH
#define IRTHERM_CAMPAIGN_PLAN_GEN_HH

#include <string>

#include "base/rng.hh"
#include "sweep/plan.hh"

namespace irtherm::campaign
{

/** A generated plan: the exact JSON text (kept verbatim for repro
 *  dumps) plus its parsed form. */
struct GeneratedPlan
{
    std::string json;
    sweep::SweepPlan plan;
    /** Every job has a distinct stack hash (config-only axes). */
    bool fleetSafe = false;
};

/**
 * Draw a plan from @p rng. With @p fleetSafe the axes are config.*
 * only (grid dims, cooling), so the cross product never repeats a
 * stack hash; otherwise power axes may join the cross product,
 * exercising warm starts and the impulse-superposition path.
 * Plans expand to between 2 and ~16 jobs on small steady grids.
 */
GeneratedPlan generatePlan(SplitMix64 &rng, bool fleetSafe);

} // namespace irtherm::campaign

#endif // IRTHERM_CAMPAIGN_PLAN_GEN_HH
