#include "campaign/plan_gen.hh"

#include <algorithm>
#include <vector>

namespace irtherm::campaign
{

namespace
{

/** Pick @p k distinct entries of @p pool, preserving pool order so
 *  the axis value list (and hence the plan JSON) is canonical. */
std::vector<const char *>
pickDistinct(SplitMix64 &rng, std::vector<const char *> pool,
             std::size_t k)
{
    std::vector<const char *> picked;
    std::vector<bool> taken(pool.size(), false);
    k = std::min(k, pool.size());
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = rng.index(pool.size());
        while (taken[j])
            j = (j + 1) % pool.size();
        taken[j] = true;
    }
    for (std::size_t j = 0; j < pool.size(); ++j) {
        if (taken[j])
            picked.push_back(pool[j]);
    }
    return picked;
}

std::string
joinValues(const std::vector<const char *> &values)
{
    std::string out;
    for (const char *v : values) {
        if (!out.empty())
            out += ", ";
        out += v;
    }
    return out;
}

} // namespace

GeneratedPlan
generatePlan(SplitMix64 &rng, bool fleetSafe)
{
    // Candidate values are fixed strings, spliced verbatim into the
    // plan JSON: no double formatting anywhere, so regeneration is
    // byte-exact by construction.
    static const std::vector<const char *> kGridNx = {
        "8", "10", "12", "14", "16", "20", "24", "28", "32"};
    static const std::vector<const char *> kGridNy = {"8", "12",
                                                      "16"};
    static const std::vector<const char *> kPowerUniform = {
        "0.3", "0.45", "0.6", "0.75", "0.9"};
    static const std::vector<const char *> kBlockWatts = {
        "1.0", "2.0", "3.5", "5.0"};
    static const std::vector<const char *> kPreconditioners = {
        "jacobi", "ssor", "ic0", "mg"};

    const bool ev6 = rng.weightedIndex({0.7, 0.3}) == 0;
    const char *floorplan = ev6 ? "preset:ev6" : "preset:athlon";
    const char *gridNy = kGridNy[rng.index(kGridNy.size())];
    const char *powerUniform =
        kPowerUniform[rng.index(kPowerUniform.size())];

    std::string base = "{\"floorplan\": \"";
    base += floorplan;
    base += "\",\n           \"mode\": \"steady\",\n";
    base += "           \"power.uniform\": ";
    base += powerUniform;
    base += ",\n";
    // ~half the plans pin a non-default preconditioner; the rest use
    // the solver's own choice.
    if (rng.chance(0.5)) {
        base += "           \"solver.preconditioner\": \"";
        base += kPreconditioners[rng.index(kPreconditioners.size())];
        base += "\",\n";
    }
    if (!fleetSafe && rng.chance(0.25))
        base += "           \"solver.superposition\": false,\n";
    base += "           \"config\": {\"model_mode\": \"grid\", "
            "\"grid_ny\": ";
    base += gridNy;
    base += "}}";

    // Axes. config.grid_nx is always present (distinct stack hash per
    // value); fleet-safe plans may add a second config axis, free
    // plans may add power axes instead.
    std::vector<std::pair<std::string, std::string>> axes;
    std::size_t jobs = 1;

    const std::size_t nxCount =
        static_cast<std::size_t>(rng.range(fleetSafe ? 3 : 2, 5));
    const auto nxValues = pickDistinct(rng, kGridNx, nxCount);
    axes.emplace_back("config.grid_nx", joinValues(nxValues));
    jobs *= nxValues.size();

    if (fleetSafe) {
        if (rng.chance(0.4)) {
            const auto nyValues = pickDistinct(rng, kGridNy, 2);
            axes.emplace_back("config.grid_ny",
                              joinValues(nyValues));
            jobs *= nyValues.size();
        }
    } else {
        if (rng.chance(0.5)) {
            const auto pValues = pickDistinct(
                rng, kPowerUniform,
                static_cast<std::size_t>(rng.range(2, 3)));
            axes.emplace_back("power.uniform", joinValues(pValues));
            jobs *= pValues.size();
        }
        // Block-power axis only on ev6 (IntReg is an ev6 unit) and
        // only while the cross product stays campaign-sized.
        if (ev6 && jobs <= 8 && rng.chance(0.3)) {
            const auto wValues = pickDistinct(rng, kBlockWatts, 2);
            axes.emplace_back("power.block.IntReg",
                              joinValues(wValues));
            jobs *= wValues.size();
        }
    }

    std::string json = "{\"name\": \"campaign\",\n \"base\": ";
    json += base;
    json += ",\n \"axes\": {";
    for (std::size_t i = 0; i < axes.size(); ++i) {
        if (i)
            json += ",\n          ";
        json += "\"" + axes[i].first + "\": [" + axes[i].second +
                "]";
    }
    json += "}}\n";

    GeneratedPlan out;
    out.json = json;
    out.plan = sweep::SweepPlan::parse(json, "campaign plan");
    out.fleetSafe = fleetSafe;
    return out;
}

} // namespace irtherm::campaign
