#include "campaign/fault_gen.hh"

#include <algorithm>
#include <cstring>

#include "base/fault_injection.hh"
#include "base/logging.hh"

namespace irtherm::campaign
{

std::string
generateFaultSpec(SplitMix64 &rng,
                  const std::vector<const char *> &eligible)
{
    if (eligible.empty())
        fatal("generateFaultSpec: empty eligible point list");

    // 1-3 rules, each on a distinct point (drawn without
    // replacement, preserving list order for a canonical spec).
    const std::size_t want =
        1 + rng.weightedIndex({0.45, 0.35, 0.2});
    std::vector<bool> taken(eligible.size(), false);
    for (std::size_t i = 0;
         i < std::min(want, eligible.size()); ++i) {
        std::size_t j = rng.index(eligible.size());
        while (taken[j])
            j = (j + 1) % eligible.size();
        taken[j] = true;
    }

    // Knob values are fixed strings so the spec is byte-replayable.
    static const char *const kProbs[] = {"", "0.5", "0.25"};

    std::string spec;
    for (std::size_t j = 0; j < eligible.size(); ++j) {
        if (!taken[j])
            continue;
        const char *point = eligible[j];
        const std::uint64_t count = rng.range(1, 3);
        const std::uint64_t after =
            rng.weightedIndex({0.6, 0.25, 0.15});
        const char *prob =
            kProbs[rng.weightedIndex({0.6, 0.25, 0.15})];

        if (!spec.empty())
            spec += ',';
        spec += point;
        spec += ":count=" + std::to_string(count);
        if (after > 0)
            spec += ":after=" + std::to_string(after);
        if (*prob != '\0')
            spec += std::string(":prob=") + prob;
        if (std::strcmp(point, faultpoint::JobStall) == 0)
            spec += ":seconds=0.05";
    }
    return spec;
}

} // namespace irtherm::campaign
