/**
 * @file
 * Random fault-spec composition for campaigns.
 *
 * Draws 1-3 rules over a caller-supplied subset of the fault-point
 * catalog (FaultInjector::knownPoints()) with random count=/after=/
 * prob= knobs, and serializes them in the exact IRTHERM_FAULTS
 * grammar — the generated spec is what the driver arms in-process
 * and what it puts into the environment of spawned fleet processes,
 * and it round-trips through FaultInjector::arm() by construction.
 */

#ifndef IRTHERM_CAMPAIGN_FAULT_GEN_HH
#define IRTHERM_CAMPAIGN_FAULT_GEN_HH

#include <string>
#include <vector>

#include "base/rng.hh"

namespace irtherm::campaign
{

/**
 * Compose a random IRTHERM_FAULTS spec over @p eligible points
 * (names from the known-point catalog). Up to three rules, each on a
 * distinct point; job.stall rules carry a small seconds= payload so
 * campaigns never block on a long injected sleep.
 */
std::string generateFaultSpec(
    SplitMix64 &rng, const std::vector<const char *> &eligible);

} // namespace irtherm::campaign

#endif // IRTHERM_CAMPAIGN_FAULT_GEN_HH
