#include "core/simulator.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/event_trace.hh"
#include "obs/span.hh"

namespace irtherm
{

ThermalSimulator::ThermalSimulator(const StackModel &model,
                                   const SimulatorOptions &opts_)
    : stack(model), opts(opts_), rise(model.nodeCount(), 0.0),
      nodePower(model.nodeCount(), 0.0),
      advancesMetric(obs::MetricsRegistry::global().counter(
          "core.simulator.advances")),
      advanceTimer(obs::MetricsRegistry::global().timer(
          "core.simulator.advance_time")),
      steadyInitTimer(obs::MetricsRegistry::global().timer(
          "core.simulator.steady_init_time")),
      simTimeGauge(obs::MetricsRegistry::global().gauge(
          "core.simulator.sim_time_s"))
{
    IntegratorKind kind = opts.integrator;
    if (kind == IntegratorKind::Auto) {
        kind = stack.options().mode == ModelMode::Block
                   ? IntegratorKind::AdaptiveRk4
                   : IntegratorKind::BackwardEuler;
    }
    if (kind == IntegratorKind::AdaptiveRk4) {
        rk4 = std::make_unique<Rk4Integrator>(
            stack.conductance(), stack.capacitance(), opts.rk4);
    } else {
        be = std::make_unique<BackwardEulerIntegrator>(
            stack.conductance(), stack.capacitance(),
            opts.implicitStep);
    }
}

void
ThermalSimulator::reset()
{
    std::fill(rise.begin(), rise.end(), 0.0);
    std::fill(nodePower.begin(), nodePower.end(), 0.0);
    now = 0.0;
}

void
ThermalSimulator::initializeSteady(
    const std::vector<double> &block_powers)
{
    obs::ScopedTimer initTimer(steadyInitTimer);
    obs::ScopedSpan span("core.sim.steady_init");
    span.attr("nodes", stack.nodeCount());
    const std::vector<double> abs_temps =
        stack.steadyNodeTemperatures(block_powers);
    IRTHERM_EVENT("core.steady_init",
                  {"nodes", abs_temps.size()});
    const double ambient = stack.packageConfig().ambient;
    for (std::size_t i = 0; i < rise.size(); ++i)
        rise[i] = abs_temps[i] - ambient;
    nodePower = stack.nodePowerVector(block_powers);
    now = 0.0;
}

void
ThermalSimulator::setBlockPowers(const std::vector<double> &block_powers)
{
    nodePower = stack.nodePowerVector(block_powers);
}

void
ThermalSimulator::advance(double dt)
{
    if (dt <= 0.0)
        fatal("ThermalSimulator::advance: non-positive dt");
    obs::ScopedTimer stepTimer(advanceTimer);
    obs::ScopedSpan span("core.sim.advance");
    span.attr("dt_s", dt).attr("integrator", rk4 ? "rk4" : "be");
    if (rk4) {
        rk4->advance(rise, nodePower, dt);
    } else {
        be->advance(rise, nodePower, dt);
    }
    now += dt;
    advancesMetric.add();
    simTimeGauge.set(now);
}

std::vector<double>
ThermalSimulator::blockTemperatures() const
{
    return stack.blockTemperatures(nodeTemperatures());
}

std::vector<double>
ThermalSimulator::nodeTemperatures() const
{
    std::vector<double> t = rise;
    const double ambient = stack.packageConfig().ambient;
    for (double &v : t)
        v += ambient;
    return t;
}

double
ThermalSimulator::maxSiliconTemperature() const
{
    const std::vector<double> cells =
        stack.siliconCellTemperatures(nodeTemperatures());
    return *std::max_element(cells.begin(), cells.end());
}

double
ThermalSimulator::minSiliconTemperature() const
{
    const std::vector<double> cells =
        stack.siliconCellTemperatures(nodeTemperatures());
    return *std::min_element(cells.begin(), cells.end());
}

} // namespace irtherm
