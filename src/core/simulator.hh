/**
 * @file
 * Transient thermal simulation driver.
 *
 * Owns the temperature state of a StackModel and advances it under a
 * piecewise-constant block power vector — the access pattern of both
 * the paper's warm-up / pulse experiments and the DTM trace replay
 * (one power sample per interval, temperatures read back between
 * intervals).
 *
 * Block-mode networks use HotSpot's adaptive RK4; grid-mode networks
 * are stiff enough that backward Euler with a fixed step is the
 * default. Either can be forced through the options.
 */

#ifndef IRTHERM_CORE_SIMULATOR_HH
#define IRTHERM_CORE_SIMULATOR_HH

#include <memory>
#include <vector>

#include "core/stack_model.hh"
#include "numeric/ode.hh"
#include "obs/metrics.hh"

namespace irtherm
{

/** Integrator selection for ThermalSimulator. */
enum class IntegratorKind
{
    Auto,          ///< RK4 for block mode, backward Euler for grid
    AdaptiveRk4,
    BackwardEuler,
};

/** Simulation options. */
struct SimulatorOptions
{
    IntegratorKind integrator = IntegratorKind::Auto;
    Rk4Options rk4;
    /** Fixed step for backward Euler (s). */
    double implicitStep = 1e-3;
};

/**
 * Stateful transient simulator over a StackModel.
 *
 * Temperatures start at ambient (or at a steady state via
 * initializeSteady) and evolve under setBlockPowers / advance.
 */
class ThermalSimulator
{
  public:
    explicit ThermalSimulator(const StackModel &model,
                              const SimulatorOptions &opts = {});

    /** Reset all nodes to ambient and time to zero. */
    void reset();

    /**
     * Set the state to the steady solution of @p block_powers and
     * reset time to zero. This is the paper's procedure for the
     * short-term oscillation experiments (Figs. 8, 9, 12).
     */
    void initializeSteady(const std::vector<double> &block_powers);

    /** Set the power vector held until the next call. */
    void setBlockPowers(const std::vector<double> &block_powers);

    /** Advance the state by @p dt seconds under the current powers. */
    void advance(double dt);

    /** Simulated time since construction / last reset (s). */
    double time() const { return now; }

    /** Per-block silicon temperatures (kelvin, absolute). */
    std::vector<double> blockTemperatures() const;

    /** All node temperatures (kelvin, absolute). */
    std::vector<double> nodeTemperatures() const;

    /** Hottest silicon cell temperature (kelvin). */
    double maxSiliconTemperature() const;

    /** Coolest silicon cell temperature (kelvin). */
    double minSiliconTemperature() const;

    const StackModel &model() const { return stack; }

  private:
    const StackModel &stack;
    SimulatorOptions opts;
    /** Node temperature rise above ambient. */
    std::vector<double> rise;
    /** Node power vector for the current block powers. */
    std::vector<double> nodePower;
    double now = 0.0;

    std::unique_ptr<Rk4Integrator> rk4;
    std::unique_ptr<BackwardEulerIntegrator> be;

    // Phase timings and progress (process-wide aggregates).
    obs::Counter &advancesMetric;
    obs::Timer &advanceTimer;
    obs::Timer &steadyInitTimer;
    obs::Gauge &simTimeGauge;
};

} // namespace irtherm

#endif // IRTHERM_CORE_SIMULATOR_HH
