#include "core/package.hh"

#include <cmath>

#include "base/logging.hh"
#include "materials/convection.hh"

namespace irtherm
{

const char *
flowDirectionName(FlowDirection dir)
{
    switch (dir) {
      case FlowDirection::LeftToRight:
        return "left-to-right";
      case FlowDirection::RightToLeft:
        return "right-to-left";
      case FlowDirection::BottomToTop:
        return "bottom-to-top";
      case FlowDirection::TopToBottom:
        return "top-to-bottom";
    }
    panic("flowDirectionName: bad enum value");
}

double
MicrochannelSpec::hydraulicDiameter() const
{
    return 2.0 * channelWidth * channelHeight /
           (channelWidth + channelHeight);
}

double
MicrochannelSpec::filmCoefficient() const
{
    return nusselt * coolant.conductivity / hydraulicDiameter();
}

double
MicrochannelSpec::porosity() const
{
    return channelWidth / (channelWidth + wallWidth);
}

void
PackageConfig::check(double die_width, double die_height) const
{
    if (dieThickness <= 0.0)
        fatal("PackageConfig: non-positive die thickness");
    dieMaterial.check();

    if (cooling == CoolingKind::AirSink) {
        if (airSink.timThickness <= 0.0 ||
            airSink.spreaderThickness <= 0.0 ||
            airSink.sinkThickness <= 0.0) {
            fatal("PackageConfig: non-positive package layer thickness");
        }
        if (airSink.spreaderSide < die_width ||
            airSink.spreaderSide < die_height) {
            fatal("PackageConfig: spreader smaller than the die");
        }
        if (airSink.sinkSide < airSink.spreaderSide)
            fatal("PackageConfig: heatsink smaller than the spreader");
        if (airSink.sinkToAmbientResistance <= 0.0)
            fatal("PackageConfig: non-positive sink-to-ambient R");
        airSink.timMaterial.check();
        airSink.spreaderMaterial.check();
        airSink.sinkMaterial.check();
    } else if (cooling == CoolingKind::OilSilicon) {
        oilFlow.oil.check();
        if (oilFlow.velocity <= 0.0)
            fatal("PackageConfig: non-positive oil velocity");
    } else if (cooling == CoolingKind::Microchannel) {
        microchannel.coolant.check();
        microchannel.capMaterial.check();
        if (microchannel.channelWidth <= 0.0 ||
            microchannel.channelHeight <= 0.0 ||
            microchannel.wallWidth <= 0.0 ||
            microchannel.baseThickness <= 0.0) {
            fatal("PackageConfig: non-positive microchannel geometry");
        }
        if (microchannel.flowVelocity <= 0.0)
            fatal("PackageConfig: non-positive coolant velocity");
        if (microchannel.nusselt <= 0.0)
            fatal("PackageConfig: non-positive Nusselt number");
    } else {
        if (naturalConvection.coefficient <= 0.0)
            fatal("PackageConfig: non-positive natural-convection h");
    }

    if (secondary.enabled) {
        if (secondary.pcbSide < die_width ||
            secondary.pcbSide < die_height) {
            fatal("PackageConfig: PCB smaller than the die");
        }
        secondary.interconnectMaterial.check();
        secondary.c4Material.check();
        secondary.substrateMaterial.check();
        secondary.solderMaterial.check();
        secondary.pcbMaterial.check();
    }

    if (ambient <= 0.0)
        fatal("PackageConfig: non-positive ambient temperature");
}

PackageConfig
PackageConfig::makeAirSink(double r_convec, double ambient_celsius)
{
    PackageConfig cfg;
    cfg.cooling = CoolingKind::AirSink;
    cfg.airSink.sinkToAmbientResistance = r_convec;
    cfg.ambient = toKelvin(ambient_celsius);
    return cfg;
}

PackageConfig
PackageConfig::makeOilSilicon(double velocity, FlowDirection dir,
                              double ambient_celsius)
{
    PackageConfig cfg;
    cfg.cooling = CoolingKind::OilSilicon;
    cfg.oilFlow.velocity = velocity;
    cfg.oilFlow.direction = dir;
    cfg.ambient = toKelvin(ambient_celsius);
    return cfg;
}

PackageConfig
PackageConfig::makeMicrochannel(double velocity, FlowDirection dir,
                                double ambient_celsius)
{
    PackageConfig cfg;
    cfg.cooling = CoolingKind::Microchannel;
    cfg.microchannel.flowVelocity = velocity;
    cfg.microchannel.direction = dir;
    cfg.ambient = toKelvin(ambient_celsius);
    return cfg;
}

PackageConfig
PackageConfig::makeNaturalConvection(double coefficient,
                                     double ambient_celsius)
{
    PackageConfig cfg;
    cfg.cooling = CoolingKind::NaturalConvection;
    cfg.naturalConvection.coefficient = coefficient;
    cfg.ambient = toKelvin(ambient_celsius);
    return cfg;
}

double
oilVelocityForResistance(const Fluid &oil, double flow_length,
                         double area, double target_resistance)
{
    if (target_resistance <= 0.0)
        fatal("oilVelocityForResistance: non-positive target");
    const double h_target = 1.0 / (target_resistance * area);
    // Eq. 2: h = 0.664 (k/L) sqrt(U L / nu) Pr^(1/3)
    //   =>  sqrt(U) = h L / (0.664 k Pr^(1/3) sqrt(L / nu))
    const double pr = oil.prandtl();
    const double denom = 0.664 * oil.conductivity * std::cbrt(pr) *
                         std::sqrt(flow_length / oil.kinematicViscosity);
    const double sqrt_u = h_target * flow_length / denom;
    return sqrt_u * sqrt_u;
}

} // namespace irtherm
