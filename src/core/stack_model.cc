#include "core/stack_model.hh"

#include <algorithm>
#include <cmath>

#include "base/errors.hh"
#include "base/fault_injection.hh"
#include "base/logging.hh"
#include "materials/convection.hh"
#include "numeric/impulse_cache.hh"
#include "numeric/iterative.hh"
#include "numeric/robust_solve.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace irtherm
{

namespace
{

/** Geometric tolerance for edge contact (1 nm). */
constexpr double contactTol = 1e-9;

/** Result of a shared-edge test between two rects. */
struct Contact
{
    double length = 0.0; ///< shared edge length (m)
    double halfA = 0.0;  ///< rect A half-extent perpendicular to edge
    double halfB = 0.0;
};

/** True when the rects share an edge; fills @p out. */
bool
rectContact(const Block &a, const Block &b, Contact &out)
{
    const double y_overlap =
        std::min(a.top(), b.top()) - std::max(a.y, b.y);
    if ((std::abs(a.right() - b.x) < contactTol ||
         std::abs(b.right() - a.x) < contactTol) &&
        y_overlap > contactTol) {
        out = {y_overlap, 0.5 * a.width, 0.5 * b.width};
        return true;
    }
    const double x_overlap =
        std::min(a.right(), b.right()) - std::max(a.x, b.x);
    if ((std::abs(a.top() - b.y) < contactTol ||
         std::abs(b.top() - a.y) < contactTol) &&
        x_overlap > contactTol) {
        out = {x_overlap, 0.5 * a.height, 0.5 * b.height};
        return true;
    }
    return false;
}

/**
 * Four strips tiling the ring between an inner and an outer
 * rectangle. West/east strips take the full outer height; the
 * north/south strips span only the inner width, so the four strips
 * plus the inner rectangle exactly tile the outer one.
 */
std::vector<Block>
ringStrips(double in_x0, double in_y0, double in_x1, double in_y1,
           double out_x0, double out_y0, double out_x1, double out_y1,
           const std::string &prefix)
{
    std::vector<Block> strips;
    auto push = [&](const std::string &n, double x0, double y0,
                    double x1, double y1) {
        if (x1 - x0 > contactTol && y1 - y0 > contactTol)
            strips.push_back({prefix + n, x0, y0, x1 - x0, y1 - y0});
    };
    push("W", out_x0, out_y0, in_x0, out_y1);
    push("E", in_x1, out_y0, out_x1, out_y1);
    push("S", in_x0, out_y0, in_x1, in_y0);
    push("N", in_x0, in_y1, in_x1, out_y1);
    return strips;
}

} // namespace

StackModel::StackModel(const Floorplan &fp, const PackageConfig &pkg,
                       const ModelOptions &opts)
    : fp_(fp), pkg_(pkg), opts_(opts)
{
    fp_.validate();
    pkg_.check(fp_.width(), fp_.height());
    buildPartition();
    buildLayers();
    assemble();
}

void
StackModel::buildPartition()
{
    if (opts_.mode == ModelMode::Block) {
        if (pkg_.cooling == CoolingKind::Microchannel) {
            fatal("StackModel: microchannel cooling needs grid mode "
                  "(the coolant advects along ordered cells)");
        }
        partition_ = fp_.blocks();
        return;
    }
    mapping_ = std::make_unique<GridMapping>(fp_, opts_.gridNx,
                                             opts_.gridNy);
    const double dx = mapping_->cellWidth();
    const double dy = mapping_->cellHeight();
    partition_.reserve(mapping_->cellCount());
    for (std::size_t iy = 0; iy < opts_.gridNy; ++iy) {
        for (std::size_t ix = 0; ix < opts_.gridNx; ++ix) {
            partition_.push_back(
                {"c" + std::to_string(ix) + "_" + std::to_string(iy),
                 static_cast<double>(ix) * dx,
                 static_cast<double>(iy) * dy, dx, dy});
        }
    }
}

void
StackModel::buildLayers()
{
    const double w = fp_.width();
    const double h = fp_.height();
    const double cx = 0.5 * w;
    const double cy = 0.5 * h;

    auto die_footprint_layer = [&](const std::string &name,
                                   const SolidMaterial &mat,
                                   double thickness) {
        Layer layer;
        layer.name = name;
        layer.mat = mat;
        layer.thickness = thickness;
        layer.rects = partition_;
        layer.cellsArePartition = true;
        return layer;
    };

    /** Layer covering a centered square of the given side. */
    auto square_layer = [&](const std::string &name,
                            const SolidMaterial &mat, double thickness,
                            double side) {
        Layer layer = die_footprint_layer(name, mat, thickness);
        const auto ring =
            ringStrips(0.0, 0.0, w, h, cx - 0.5 * side, cy - 0.5 * side,
                       cx + 0.5 * side, cy + 0.5 * side, "");
        layer.rects.insert(layer.rects.end(), ring.begin(), ring.end());
        return layer;
    };

    // Stack is assembled top (cooling side) to bottom (PCB side).
    if (pkg_.cooling == CoolingKind::AirSink) {
        const AirSinkSpec &as = pkg_.airSink;

        // Heatsink: die-footprint cells, inner ring to the spreader
        // extent, outer ring to the sink extent.
        Layer sink = die_footprint_layer("sink", as.sinkMaterial,
                                         as.sinkThickness);
        const auto inner = ringStrips(
            0.0, 0.0, w, h, cx - 0.5 * as.spreaderSide,
            cy - 0.5 * as.spreaderSide, cx + 0.5 * as.spreaderSide,
            cy + 0.5 * as.spreaderSide, "inner");
        sink.rects.insert(sink.rects.end(), inner.begin(), inner.end());
        const auto outer = ringStrips(
            cx - 0.5 * as.spreaderSide, cy - 0.5 * as.spreaderSide,
            cx + 0.5 * as.spreaderSide, cy + 0.5 * as.spreaderSide,
            cx - 0.5 * as.sinkSide, cy - 0.5 * as.sinkSide,
            cx + 0.5 * as.sinkSide, cy + 0.5 * as.sinkSide, "outer");
        sink.rects.insert(sink.rects.end(), outer.begin(), outer.end());
        layers_.push_back(std::move(sink));

        layers_.push_back(square_layer("spreader", as.spreaderMaterial,
                                       as.spreaderThickness,
                                       as.spreaderSide));
        layers_.push_back(die_footprint_layer("tim", as.timMaterial,
                                              as.timThickness));
    }

    if (pkg_.cooling == CoolingKind::Microchannel) {
        // Channel base: the solid silicon between the die back and
        // the channel floors; the coolant couples to its top.
        layers_.push_back(die_footprint_layer(
            "chbase", pkg_.microchannel.capMaterial,
            pkg_.microchannel.baseThickness));
    }

    dieLayer = layers_.size();
    layers_.push_back(die_footprint_layer("die", pkg_.dieMaterial,
                                          pkg_.dieThickness));

    if (pkg_.secondary.enabled) {
        const SecondaryPathSpec &sp = pkg_.secondary;
        layers_.push_back(die_footprint_layer(
            "interconnect", sp.interconnectMaterial,
            sp.interconnectThickness));
        layers_.push_back(
            die_footprint_layer("c4", sp.c4Material, sp.c4Thickness));
        layers_.push_back(die_footprint_layer(
            "substrate", sp.substrateMaterial, sp.substrateThickness));
        layers_.push_back(die_footprint_layer(
            "solder", sp.solderMaterial, sp.solderThickness));
        layers_.push_back(square_layer("pcb", sp.pcbMaterial,
                                       sp.pcbThickness, sp.pcbSide));
    }
}

double
StackModel::oilCoefficient(const Block &rect, double ext_x0,
                           double ext_y0, double ext_x1,
                           double ext_y1) const
{
    const OilFlowSpec &of = pkg_.oilFlow;
    double s0 = 0.0, s1 = 0.0, flow_length = 0.0;
    switch (of.direction) {
      case FlowDirection::LeftToRight:
        s0 = rect.x - ext_x0;
        s1 = rect.right() - ext_x0;
        flow_length = ext_x1 - ext_x0;
        break;
      case FlowDirection::RightToLeft:
        s0 = ext_x1 - rect.right();
        s1 = ext_x1 - rect.x;
        flow_length = ext_x1 - ext_x0;
        break;
      case FlowDirection::BottomToTop:
        s0 = rect.y - ext_y0;
        s1 = rect.top() - ext_y0;
        flow_length = ext_y1 - ext_y0;
        break;
      case FlowDirection::TopToBottom:
        s0 = ext_y1 - rect.top();
        s1 = ext_y1 - rect.y;
        flow_length = ext_y1 - ext_y0;
        break;
    }
    s0 = std::max(0.0, s0);
    s1 = std::max(s1, s0 + contactTol);

    if (!of.directional) {
        return averageHeatTransferCoefficient(of.oil, of.velocity,
                                              flow_length);
    }
    return cellAveragedCoefficient(of.oil, of.velocity, s0, s1);
}

double
StackModel::oilCellCapacitance(const Block &rect, double ext_x0,
                               double ext_y0, double ext_x1,
                               double ext_y1) const
{
    const OilFlowSpec &of = pkg_.oilFlow;
    double flow_length = 0.0, s_mid = 0.0;
    switch (of.direction) {
      case FlowDirection::LeftToRight:
        flow_length = ext_x1 - ext_x0;
        s_mid = rect.centerX() - ext_x0;
        break;
      case FlowDirection::RightToLeft:
        flow_length = ext_x1 - ext_x0;
        s_mid = ext_x1 - rect.centerX();
        break;
      case FlowDirection::BottomToTop:
        flow_length = ext_y1 - ext_y0;
        s_mid = rect.centerY() - ext_y0;
        break;
      case FlowDirection::TopToBottom:
        flow_length = ext_y1 - ext_y0;
        s_mid = ext_y1 - rect.centerY();
        break;
    }
    const double where =
        of.localBoundaryLayerCap ? std::max(s_mid, 1e-6) : flow_length;
    const double dt = thermalBoundaryLayerThickness(of.oil, of.velocity,
                                                    where);
    return of.oil.volumetricHeatCapacity() * rect.area() * dt;
}

void
StackModel::assemble()
{
    // Assign node indices.
    std::size_t n = 0;
    for (Layer &layer : layers_) {
        layer.nodeOffset = n;
        n += layer.rects.size();
    }
    const bool split_oil = pkg_.cooling == CoolingKind::OilSilicon &&
                           !pkg_.oilFlow.capacitanceAtInterface;
    if (split_oil) {
        oilNodeOffset = n;
        oilNodeCount = partition_.size();
        n += oilNodeCount;
    }
    if (pkg_.cooling == CoolingKind::Microchannel) {
        fluidNodeOffset = n;
        fluidNodeCount = partition_.size();
        n += fluidNodeCount;
        advection = true;
    }

    nodeNames_.clear();
    nodeNames_.reserve(n);
    for (const Layer &layer : layers_) {
        for (const Block &r : layer.rects)
            nodeNames_.push_back(layer.name + ":" + r.name);
    }
    if (split_oil) {
        for (std::size_t i = 0; i < oilNodeCount; ++i)
            nodeNames_.push_back("oil:" + partition_[i].name);
    }
    for (std::size_t i = 0; i < fluidNodeCount; ++i)
        nodeNames_.push_back("coolant:" + partition_[i].name);

    SparseBuilder sb(n, n);
    cap_.assign(n, 0.0);

    // --- per-layer capacitance and lateral conduction ---------------------
    for (const Layer &layer : layers_) {
        const double kt = layer.mat.conductivity * layer.thickness;
        const double cvt =
            layer.mat.volumetricHeatCapacity * layer.thickness;
        const std::size_t cells = partition_.size();
        const std::size_t count = layer.rects.size();

        for (std::size_t i = 0; i < count; ++i)
            cap_[layer.nodeOffset + i] += cvt * layer.rects[i].area();

        if (opts_.mode == ModelMode::Grid && layer.cellsArePartition) {
            // Structured stamping for the grid cells...
            const double dx = mapping_->cellWidth();
            const double dy = mapping_->cellHeight();
            const double gx = kt * dy / dx;
            const double gy = kt * dx / dy;
            for (std::size_t iy = 0; iy < opts_.gridNy; ++iy) {
                for (std::size_t ix = 0; ix < opts_.gridNx; ++ix) {
                    const std::size_t c =
                        layer.nodeOffset + mapping_->cellIndex(ix, iy);
                    if (ix + 1 < opts_.gridNx)
                        sb.stampConductance(c, c + 1, gx);
                    if (iy + 1 < opts_.gridNy) {
                        sb.stampConductance(c, c + opts_.gridNx, gy);
                    }
                }
            }
            // ...then generic contact for strips against everything.
            for (std::size_t i = cells; i < count; ++i) {
                for (std::size_t j = 0; j < i; ++j) {
                    Contact ct;
                    if (!rectContact(layer.rects[i], layer.rects[j], ct))
                        continue;
                    const double g =
                        kt * ct.length / (ct.halfA + ct.halfB);
                    sb.stampConductance(layer.nodeOffset + i,
                                        layer.nodeOffset + j, g);
                }
            }
        } else {
            for (std::size_t i = 0; i < count; ++i) {
                for (std::size_t j = 0; j < i; ++j) {
                    Contact ct;
                    if (!rectContact(layer.rects[i], layer.rects[j], ct))
                        continue;
                    const double g =
                        kt * ct.length / (ct.halfA + ct.halfB);
                    sb.stampConductance(layer.nodeOffset + i,
                                        layer.nodeOffset + j, g);
                }
            }
        }
    }

    // --- vertical conduction between consecutive layers -------------------
    for (std::size_t li = 0; li + 1 < layers_.size(); ++li) {
        const Layer &a = layers_[li];
        const Layer &b = layers_[li + 1];
        const double half_r_per_area =
            0.5 * a.thickness / a.mat.conductivity +
            0.5 * b.thickness / b.mat.conductivity;
        const std::size_t cells = partition_.size();

        // Aligned die-footprint cells couple one-to-one.
        for (std::size_t i = 0; i < cells; ++i) {
            const double g = partition_[i].area() / half_r_per_area;
            sb.stampConductance(a.nodeOffset + i, b.nodeOffset + i, g);
        }
        // Strip-to-cell and strip-to-strip coupling via area overlap.
        auto couple = [&](std::size_t ia, std::size_t ib) {
            const Block &ra = a.rects[ia];
            const Block &rb = b.rects[ib];
            const double ov =
                ra.overlapArea(rb.x, rb.y, rb.right(), rb.top());
            if (ov <= 1e-9 * std::min(ra.area(), rb.area()))
                return;
            sb.stampConductance(a.nodeOffset + ia, b.nodeOffset + ib,
                                ov / half_r_per_area);
        };
        for (std::size_t ia = cells; ia < a.rects.size(); ++ia)
            for (std::size_t ib = 0; ib < b.rects.size(); ++ib)
                couple(ia, ib);
        for (std::size_t ib = cells; ib < b.rects.size(); ++ib)
            for (std::size_t ia = 0; ia < cells; ++ia)
                couple(ia, ib);
    }

    // --- boundary conditions ----------------------------------------------
    double primary_total = 0.0;
    if (pkg_.cooling == CoolingKind::AirSink) {
        // Distribute the lumped sink-to-ambient resistance and the
        // convection capacitance over the sink surface by area.
        const Layer &sink = layers_.front();
        const double sink_area =
            pkg_.airSink.sinkSide * pkg_.airSink.sinkSide;
        for (std::size_t i = 0; i < sink.rects.size(); ++i) {
            const double frac = sink.rects[i].area() / sink_area;
            const double g =
                frac / pkg_.airSink.sinkToAmbientResistance;
            const std::size_t node = sink.nodeOffset + i;
            sb.stampGroundConductance(node, g);
            grounds_.push_back({node, g, true});
            cap_[node] += frac * pkg_.airSink.convectionCapacitance;
            primary_total += g;
        }
    } else if (pkg_.cooling == CoolingKind::OilSilicon) {
        // Oil over the bare die top.
        const Layer &die = layers_[dieLayer];
        const double w = fp_.width();
        const double h = fp_.height();
        const bool split = oilNodeCount > 0;
        for (std::size_t i = 0; i < partition_.size(); ++i) {
            const Block &r = partition_[i];
            const double hc = oilCoefficient(r, 0.0, 0.0, w, h);
            const double g = hc * r.area();
            const double c_oil = oilCellCapacitance(r, 0.0, 0.0, w, h);
            const std::size_t die_node = die.nodeOffset + i;
            if (split) {
                const std::size_t oil_node = oilNodeOffset + i;
                sb.stampConductance(die_node, oil_node, 2.0 * g);
                sb.stampGroundConductance(oil_node, 2.0 * g);
                grounds_.push_back({oil_node, 2.0 * g, true});
                cap_[oil_node] += c_oil;
            } else {
                sb.stampGroundConductance(die_node, g);
                grounds_.push_back({die_node, g, true});
                cap_[die_node] += c_oil;
            }
            oilCapacitanceTotal += c_oil;
            primary_total += g;
        }
    } else if (pkg_.cooling == CoolingKind::Microchannel) {
        // Coolant in etched channels over a silicon base: film
        // conductance per cell, plus an upwind advection chain per
        // lane of cells along the flow. Heat leaves the network
        // carried by the outlet coolant, not through a ground
        // resistance.
        const MicrochannelSpec &mc = pkg_.microchannel;
        const Layer &base = layers_.front(); // "chbase"
        const double dx = mapping_->cellWidth();
        const double dy = mapping_->cellHeight();
        const std::size_t nx = opts_.gridNx;
        const std::size_t ny = opts_.gridNy;

        const bool along_x =
            mc.direction == FlowDirection::LeftToRight ||
            mc.direction == FlowDirection::RightToLeft;
        const double perp = along_x ? dy : dx;
        const double along = along_x ? dx : dy;
        const double pitch = mc.channelWidth + mc.wallWidth;

        // Per-cell wetted area: channels across the cell, each
        // wetted on the floor and both walls (silicon fins are
        // near-isothermal at these scales).
        const double a_wet = perp / pitch *
                             (mc.channelWidth +
                              2.0 * mc.channelHeight) *
                             along;
        const double g_film = mc.filmCoefficient() * a_wet;
        const double g_half_base =
            base.mat.conductivity * dx * dy /
            (0.5 * base.thickness);
        const double g_couple =
            1.0 / (1.0 / g_film + 1.0 / g_half_base);

        // rho cp times the coolant volume under the cell.
        const double c_fluid = mc.coolant.volumetricHeatCapacity() *
                               dx * dy * mc.porosity() *
                               mc.channelHeight;
        // Lane mass flow times cp (W/K).
        const double mcp = mc.coolant.volumetricHeatCapacity() *
                           mc.flowVelocity * perp * mc.porosity() *
                           mc.channelHeight;

        for (std::size_t iy = 0; iy < ny; ++iy) {
            for (std::size_t ix = 0; ix < nx; ++ix) {
                const std::size_t cell = mapping_->cellIndex(ix, iy);
                const std::size_t f = fluidNodeOffset + cell;
                sb.stampConductance(base.nodeOffset + cell, f,
                                    g_couple);
                cap_[f] += c_fluid;

                // Upwind neighbour along the flow; the first cell of
                // each lane drinks ambient coolant (rise zero).
                bool has_upstream = true;
                std::size_t up = 0;
                switch (mc.direction) {
                  case FlowDirection::LeftToRight:
                    has_upstream = ix > 0;
                    if (has_upstream)
                        up = mapping_->cellIndex(ix - 1, iy);
                    break;
                  case FlowDirection::RightToLeft:
                    has_upstream = ix + 1 < nx;
                    if (has_upstream)
                        up = mapping_->cellIndex(ix + 1, iy);
                    break;
                  case FlowDirection::BottomToTop:
                    has_upstream = iy > 0;
                    if (has_upstream)
                        up = mapping_->cellIndex(ix, iy - 1);
                    break;
                  case FlowDirection::TopToBottom:
                    has_upstream = iy + 1 < ny;
                    if (has_upstream)
                        up = mapping_->cellIndex(ix, iy + 1);
                    break;
                }
                sb.add(f, f, mcp);
                if (has_upstream)
                    sb.add(f, fluidNodeOffset + up, -mcp);

                // Outlet cells carry the heat out of the model.
                bool is_outlet = false;
                switch (mc.direction) {
                  case FlowDirection::LeftToRight:
                    is_outlet = ix + 1 == nx;
                    break;
                  case FlowDirection::RightToLeft:
                    is_outlet = ix == 0;
                    break;
                  case FlowDirection::BottomToTop:
                    is_outlet = iy + 1 == ny;
                    break;
                  case FlowDirection::TopToBottom:
                    is_outlet = iy == 0;
                    break;
                }
                if (is_outlet)
                    outlets_.push_back({f, mcp});
            }
        }

        // Effective single-resistance diagnostic: film plus the
        // standard half-caloric term.
        const std::size_t lanes = along_x ? ny : nx;
        const double mcp_total = mcp * static_cast<double>(lanes);
        const double g_film_total =
            g_film * static_cast<double>(nx * ny);
        primary_total = 1.0 / (1.0 / g_film_total +
                               1.0 / (2.0 * mcp_total));
    } else {
        // Natural convection off the bare die.
        const Layer &die = layers_[dieLayer];
        for (std::size_t i = 0; i < partition_.size(); ++i) {
            const double g = pkg_.naturalConvection.coefficient *
                             partition_[i].area();
            const std::size_t node = die.nodeOffset + i;
            sb.stampGroundConductance(node, g);
            grounds_.push_back({node, g, true});
            primary_total += g;
        }
    }
    primaryConductance = primary_total;

    if (pkg_.secondary.enabled) {
        const Layer &pcb = layers_.back();
        if (pkg_.cooling == CoolingKind::OilSilicon) {
            // Second oil stream under the PCB (paper Fig. 1).
            double x0 = 1e300, y0 = 1e300, x1 = -1e300, y1 = -1e300;
            for (const Block &r : pcb.rects) {
                x0 = std::min(x0, r.x);
                y0 = std::min(y0, r.y);
                x1 = std::max(x1, r.right());
                y1 = std::max(y1, r.top());
            }
            for (std::size_t i = 0; i < pcb.rects.size(); ++i) {
                const Block &r = pcb.rects[i];
                const double hc = oilCoefficient(r, x0, y0, x1, y1);
                const double g = hc * r.area();
                const std::size_t node = pcb.nodeOffset + i;
                sb.stampGroundConductance(node, g);
                grounds_.push_back({node, g, false});
                cap_[node] += oilCellCapacitance(r, x0, y0, x1, y1);
            }
        } else {
            // Natural convection off the PCB bottom.
            for (std::size_t i = 0; i < pcb.rects.size(); ++i) {
                const double g = pkg_.secondary.pcbNaturalConvection *
                                 pcb.rects[i].area();
                const std::size_t node = pcb.nodeOffset + i;
                sb.stampGroundConductance(node, g);
                grounds_.push_back({node, g, false});
            }
        }
    }

    g_ = sb.build();
    if (!advection && !g_.isSymmetric(1e-9))
        panic("StackModel: assembled conductance matrix not symmetric");
    for (std::size_t i = 0; i < cap_.size(); ++i) {
        if (cap_[i] <= 0.0)
            panic("StackModel: non-positive capacitance at node ",
                  nodeNames_[i]);
    }
}

const std::string &
StackModel::nodeName(std::size_t node) const
{
    return nodeNames_.at(node);
}

const std::vector<StackModel::GroundStamp> &
StackModel::groundStamps() const
{
    return grounds_;
}

std::size_t
StackModel::siliconNodeBegin() const
{
    return layers_[dieLayer].nodeOffset;
}

std::vector<double>
StackModel::nodePowerVector(const std::vector<double> &block_powers) const
{
    if (block_powers.size() != fp_.blockCount())
        fatal("nodePowerVector: expected ", fp_.blockCount(),
              " block powers, got ", block_powers.size());
    std::vector<double> p(nodeCount(), 0.0);
    const std::size_t off = siliconNodeBegin();
    if (opts_.mode == ModelMode::Block) {
        for (std::size_t i = 0; i < block_powers.size(); ++i)
            p[off + i] = block_powers[i];
    } else {
        const std::vector<double> cells =
            mapping_->blockPowersToCells(block_powers);
        for (std::size_t i = 0; i < cells.size(); ++i)
            p[off + i] = cells[i];
    }
    return p;
}

std::vector<double>
StackModel::siliconCellTemperatures(
    const std::vector<double> &node_temps) const
{
    if (node_temps.size() != nodeCount())
        fatal("siliconCellTemperatures: node vector size mismatch");
    const std::size_t off = siliconNodeBegin();
    return {node_temps.begin() + static_cast<std::ptrdiff_t>(off),
            node_temps.begin() +
                static_cast<std::ptrdiff_t>(off + partition_.size())};
}

std::vector<double>
StackModel::blockTemperatures(const std::vector<double> &node_temps) const
{
    const std::vector<double> cells = siliconCellTemperatures(node_temps);
    if (opts_.mode == ModelMode::Block)
        return cells;
    return mapping_->cellTemperaturesToBlocks(cells);
}

std::vector<double>
StackModel::blockMaxTemperatures(
    const std::vector<double> &node_temps) const
{
    const std::vector<double> cells = siliconCellTemperatures(node_temps);
    if (opts_.mode == ModelMode::Block)
        return cells;
    return mapping_->cellMaximaToBlocks(cells);
}

std::vector<double>
StackModel::steadyNodeTemperatures(
    const std::vector<double> &block_powers) const
{
    return steadyNodeTemperatures(block_powers, SteadySolveOptions{});
}

bool
StackModel::trySuperposedSteady(const std::vector<double> &block_powers,
                                const std::vector<double> &node_powers,
                                const SteadySolveOptions &solve_opts,
                                SteadySolveInfo *info,
                                std::vector<double> &out) const
{
    const std::size_t blocks = floorplan().blockCount();
    ImpulseResponseCache &cache = ImpulseResponseCache::global();
    bool wasHit = false;
    std::shared_ptr<const ImpulseResponseMatrix> matrix;
    try {
        matrix = cache.acquire(
            solve_opts.stackKey,
            [&]() {
                // One verified steady solve per block: unit power
                // into block b yields response column b. Built once
                // per stack hash, amortized over the whole sweep.
                obs::ScopedSpan span("core.impulse_build");
                span.attr("blocks", blocks).attr("nodes", cap_.size());
                auto m = std::make_shared<ImpulseResponseMatrix>();
                m->nodes = cap_.size();
                m->blocks = blocks;
                m->values.resize(m->nodes * blocks);
                RobustSolveOptions ropts;
                ropts.iterative.tolerance = solve_opts.tolerance;
                ropts.iterative.maxIterations =
                    solve_opts.maxIterations;
                ropts.iterative.preconditioner =
                    solve_opts.preconditioner;
                ropts.symmetric = true;
                ropts.scope = FaultInjector::currentContext();
                std::vector<double> unit(blocks, 0.0);
                for (std::size_t b = 0; b < blocks; ++b) {
                    unit[b] = 1.0;
                    const std::vector<double> pb =
                        nodePowerVector(unit);
                    unit[b] = 0.0;
                    const RobustSolveResult rob =
                        robustSolve(g_, pb, {}, ropts);
                    std::copy(rob.solve.x.begin(), rob.solve.x.end(),
                              m->values.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      b * m->nodes));
                }
                return m;
            },
            &wasHit);
    } catch (const std::exception &e) {
        // An impulse solve failed even through the fallback chain;
        // let the per-job iterative path make its own attempt.
        warn("impulse-response build failed: ", e.what());
        return false;
    }
    if (!matrix)
        return false;

    obs::ScopedSpan span("core.steady_solve");
    span.attr("nodes", cap_.size())
        .attr("tier", "superposition")
        .attr("cache_hit", wasHit ? "yes" : "no");
    std::vector<double> rise;
    matrix->superpose(block_powers, rise);

    // Trust discipline: the GEMV answer is accepted only when it
    // passes the same independent residual check the iterative tiers
    // face. RobustSolveOptions{}.residualSlack keeps the bound
    // identical to the chain's.
    const CsrOperator gop(g_);
    const ImpulseVerification v = verifySuperposition(
        gop, node_powers, rise, solve_opts.tolerance,
        RobustSolveOptions{}.residualSlack);
    if (!v.ok) {
        warn("superposed steady solve failed verification "
                "(residual ", v.residualNorm, " > bound ", v.bound,
                "); demoting stack ", solve_opts.stackKey,
                " to the iterative chain");
        cache.invalidate(solve_opts.stackKey);
        span.attr("verified", "no");
        return false;
    }
    span.attr("verified", "yes");
    auto &reg = obs::MetricsRegistry::global();
    reg.counter("core.steady.solves").add();
    reg.counter("core.steady.superposed").add();
    if (info != nullptr) {
        info->iterations = 0;
        info->residualNorm = v.residualNorm;
        info->initialResidualNorm = v.residualNorm;
        info->warmStarted = false;
        info->fallbackTier = 0;
        info->method = "superposition";
        info->impulseCacheHit = wasHit;
    }
    out = std::move(rise);
    for (double &t : out)
        t += pkg_.ambient;
    return true;
}

std::vector<double>
StackModel::steadyNodeTemperatures(
    const std::vector<double> &block_powers,
    const SteadySolveOptions &solve_opts, SteadySolveInfo *info) const
{
    const std::vector<double> p = nodePowerVector(block_powers);
    IterativeOptions opts;
    opts.tolerance = solve_opts.tolerance;
    opts.maxIterations = solve_opts.maxIterations;
    // The stack network mixes regular grid cells with irregular strip
    // and package nodes, so it stays CSR (no stencil operator); the
    // Multigrid kind degrades to SSOR through the CSR path.
    opts.preconditioner = solve_opts.preconditioner;

    if (solve_opts.superposition && solve_opts.stackKey != 0 &&
        !advection && solve_opts.warmStart == nullptr) {
        std::vector<double> answer;
        if (trySuperposedSteady(block_powers, p, solve_opts, info,
                                answer))
            return answer;
        // Verification miss or failed build: fall through to the
        // iterative chain below.
    }

    std::vector<double> x0;
    bool warm = false;
    if (solve_opts.warmStart != nullptr &&
        solve_opts.warmStart->size() == cap_.size()) {
        x0 = *solve_opts.warmStart;
        warm = true;
    }
    auto &reg = obs::MetricsRegistry::global();
    obs::ScopedTimer timer(reg.timer("core.steady.solve_time"));
    obs::ScopedSpan span("core.steady_solve");
    span.attr("nodes", cap_.size()).attr("warm_start",
                                         warm ? "yes" : "no");
    IterativeResult res;
    int tier = 0;
    std::string method;
    if (solve_opts.fallback) {
        RobustSolveOptions ropts;
        ropts.iterative = opts;
        ropts.symmetric = !advection;
        ropts.scope = FaultInjector::currentContext();
        RobustSolveResult rob = robustSolve(g_, p, x0, ropts);
        res = std::move(rob.solve);
        tier = rob.fallbackTier;
        method = std::move(rob.method);
    } else {
        res = solveLinear(g_, p, !advection, x0, opts);
        if (!res.converged) {
            numericError("steadyNodeTemperatures: solver failed, "
                         "residual ", res.residualNorm);
        }
    }
    reg.counter("core.steady.solves").add();
    if (warm)
        reg.counter("core.steady.warm_starts").add();
    reg.histogram("core.steady.cg_iterations")
        .observe(static_cast<double>(res.iterations));
    span.attr("iterations", res.iterations).attr("tier", tier);
    if (!method.empty())
        span.attr("method", method);
    if (info != nullptr) {
        info->iterations = res.iterations;
        info->residualNorm = res.residualNorm;
        info->initialResidualNorm = res.initialResidualNorm;
        info->warmStarted = warm;
        info->fallbackTier = tier;
        info->method = std::move(method);
    }
    for (double &t : res.x)
        t += pkg_.ambient;
    return res.x;
}

std::vector<double>
StackModel::steadyBlockTemperatures(
    const std::vector<double> &block_powers) const
{
    return blockTemperatures(steadyNodeTemperatures(block_powers));
}

double
StackModel::equivalentPrimaryResistance() const
{
    return 1.0 / primaryConductance;
}

double
StackModel::heatThroughPrimary(
    const std::vector<double> &node_temps) const
{
    double q = 0.0;
    for (const GroundStamp &gs : grounds_) {
        if (gs.primary)
            q += gs.conductance * (node_temps[gs.node] - pkg_.ambient);
    }
    // Heat advected away by outlet coolant (microchannel).
    for (const AdvectionOutlet &out : outlets_)
        q += out.mcp * (node_temps[out.node] - pkg_.ambient);
    return q;
}

double
StackModel::heatThroughSecondary(
    const std::vector<double> &node_temps) const
{
    double q = 0.0;
    for (const GroundStamp &gs : grounds_) {
        if (!gs.primary)
            q += gs.conductance * (node_temps[gs.node] - pkg_.ambient);
    }
    return q;
}

double
StackModel::siliconCapacitance() const
{
    return pkg_.dieMaterial.volumetricHeatCapacity * pkg_.dieThickness *
           fp_.width() * fp_.height();
}

double
StackModel::siliconVerticalResistance() const
{
    return pkg_.dieThickness /
           (pkg_.dieMaterial.conductivity * fp_.width() * fp_.height());
}

} // namespace irtherm
