/**
 * @file
 * Compact RC thermal model of a die in its package.
 *
 * This is the paper's modified HotSpot. The die (and every layer
 * with the same footprint) is partitioned either into the floorplan's
 * functional blocks (block mode, HotSpot classic) or into a regular
 * grid (grid mode, needed for thermal maps and for the oil
 * flow-direction effect). Layers larger than the die — spreader,
 * heatsink, PCB — get four peripheral strip nodes per size step.
 *
 * Conductances:
 *  - lateral, within a layer: k t L / (d_a + d_b) between rects
 *    sharing an edge of length L, where d is each rect's half-extent
 *    perpendicular to the edge (HotSpot's formula);
 *  - vertical, between consecutive layers: A_overlap divided by the
 *    two half-thickness resistances in series;
 *  - boundary: AIR-SINK's lumped sink-to-ambient resistance is
 *    distributed over sink nodes by area; OIL-SILICON stamps the
 *    per-cell laminar h(x) of paper Eq. 8 (or the plate average of
 *    Eq. 2 when directionality is disabled), both on the die top and
 *    on the PCB bottom.
 *
 * The oil boundary layer's heat capacitance (paper Eqs. 3-4) is
 * attached at the silicon-oil interface exactly as in the paper's
 * Fig. 7(b) circuit; an ablation flag splits Rconv around a separate
 * oil node instead.
 *
 * All solves happen in temperature-rise space (ambient = ground);
 * public APIs return absolute kelvin.
 */

#ifndef IRTHERM_CORE_STACK_MODEL_HH
#define IRTHERM_CORE_STACK_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/package.hh"
#include "floorplan/floorplan.hh"
#include "floorplan/grid_mapping.hh"
#include "numeric/linear_operator.hh"
#include "numeric/sparse.hh"

namespace irtherm
{

/** Spatial discretization of the die footprint. */
enum class ModelMode
{
    Block, ///< one node per functional block per layer
    Grid,  ///< regular nx x ny cells per layer
};

/** Discretization options. */
struct ModelOptions
{
    ModelMode mode = ModelMode::Block;
    std::size_t gridNx = 32;
    std::size_t gridNy = 32;
};

/**
 * The assembled RC network for one (floorplan, package) pair, plus
 * the block <-> node mappings and a steady-state solver.
 */
class StackModel
{
  public:
    /** A conductance from a node to ambient (ground). */
    struct GroundStamp
    {
        std::size_t node;
        double conductance;
        bool primary; ///< true: cooling side; false: secondary path
    };

    StackModel(const Floorplan &fp, const PackageConfig &pkg,
               const ModelOptions &opts = {});

    // --- network access -------------------------------------------------
    const CsrMatrix &conductance() const { return g_; }
    const std::vector<double> &capacitance() const { return cap_; }
    std::size_t nodeCount() const { return cap_.size(); }
    const std::string &nodeName(std::size_t node) const;
    const std::vector<GroundStamp> &groundStamps() const;

    // --- mappings ---------------------------------------------------------
    const Floorplan &floorplan() const { return fp_; }
    const PackageConfig &packageConfig() const { return pkg_; }
    const ModelOptions &options() const { return opts_; }

    /** Die-footprint partition (blocks or grid cells). */
    const std::vector<Block> &partition() const { return partition_; }
    std::size_t partitionCells() const { return partition_.size(); }

    /** First node index of the silicon layer (cells follow in order). */
    std::size_t siliconNodeBegin() const;

    /**
     * Expand per-block powers (W) into a full node power vector.
     * @pre block_powers.size() == floorplan().blockCount()
     */
    std::vector<double>
    nodePowerVector(const std::vector<double> &block_powers) const;

    /** Area-weighted mean silicon temperature per block (kelvin). */
    std::vector<double>
    blockTemperatures(const std::vector<double> &node_temps) const;

    /** Maximum silicon cell temperature per block (kelvin). */
    std::vector<double>
    blockMaxTemperatures(const std::vector<double> &node_temps) const;

    /** Silicon-layer temperatures, one per partition cell (kelvin). */
    std::vector<double>
    siliconCellTemperatures(const std::vector<double> &node_temps) const;

    // --- solving ----------------------------------------------------------
    /** Knobs for the steady-state solve (sweep jobs tune these). */
    struct SteadySolveOptions
    {
        std::size_t maxIterations = 100000;
        double tolerance = 1e-11; ///< relative to ||b||_2
        /**
         * Optional starting guess in temperature-rise space, node
         * order (e.g. a completed solve of the same stack under
         * different powers). Ignored when the size mismatches.
         */
        const std::vector<double> *warmStart = nullptr;
        /**
         * Escalate through the verified fallback chain (Jacobi-CG,
         * BiCGSTAB, dense LU) when the primary solve fails
         * verification. Off restores fail-fast semantics: the first
         * non-converged solve throws NumericError.
         */
        bool fallback = true;
        /**
         * Preconditioner for the primary CG tier. The stack network
         * is CSR (irregular strip/package nodes), so Multigrid
         * degrades gracefully to SSOR here; the knob exists so sweep
         * scenarios can tune the whole tier chain uniformly.
         */
        PreconditionerKind preconditioner = PreconditionerKind::Ssor;
        /**
         * Answer via impulse-response superposition: one unit-power
         * steady solve per block is cached under @ref stackKey, and
         * every solve of the same conductance network becomes a
         * dense matrix-vector product (Kemper et al.). Each
         * superposed answer is re-verified against the actual
         * conductance matrix with the iterative chain's residual
         * bound; a failed check invalidates the cache entry and
         * demotes the solve to the iterative chain. Requires a
         * nonzero stackKey; ignored for warm-started solves (the
         * guess implies the caller wants the iterative path) and
         * non-symmetric (advective) networks.
         */
        bool superposition = false;
        /**
         * Content hash identifying this conductance network across
         * jobs (e.g. ScenarioSpec::stackHash()). Zero disables the
         * superposition cache.
         */
        std::uint64_t stackKey = 0;
    };

    /** Telemetry from one steady solve. */
    struct SteadySolveInfo
    {
        std::size_t iterations = 0;
        double residualNorm = 0.0;
        double initialResidualNorm = 0.0;
        bool warmStarted = false;
        /** Fallback escalations taken (0 = primary method passed). */
        int fallbackTier = 0;
        /** Solver that produced the answer (e.g. "ssor-cg",
         *  "superposition"). */
        std::string method;
        /** Answer came from a cached impulse-response matrix (a
         *  verified GEMV instead of an iterative solve). */
        bool impulseCacheHit = false;
    };

    /** Steady-state node temperatures (kelvin, absolute). */
    std::vector<double>
    steadyNodeTemperatures(const std::vector<double> &block_powers) const;

    /**
     * Steady solve with explicit solver options and optional
     * telemetry (@p info may be null). Throws NumericError when the
     * solver (and, unless disabled, its fallback chain) fails.
     */
    std::vector<double>
    steadyNodeTemperatures(const std::vector<double> &block_powers,
                           const SteadySolveOptions &solve_opts,
                           SteadySolveInfo *info = nullptr) const;

    /** Steady-state per-block silicon temperatures (kelvin). */
    std::vector<double>
    steadyBlockTemperatures(const std::vector<double> &block_powers) const;

    // --- diagnostics --------------------------------------------------------
    /** 1 / (sum of primary-side boundary conductances), K/W. */
    double equivalentPrimaryResistance() const;

    /** Heat leaving through the cooling side at the given temps (W). */
    double heatThroughPrimary(const std::vector<double> &node_temps) const;

    /** Heat leaving through the secondary path (W). */
    double heatThroughSecondary(const std::vector<double> &node_temps) const;

    /**
     * True when the network contains upwind advection stamps
     * (microchannel coolant); the conductance matrix is then
     * non-symmetric and solvers dispatch to BiCGSTAB.
     */
    bool hasAdvection() const { return advection; }

    /** Total silicon heat capacitance (J/K), for time-constant math. */
    double siliconCapacitance() const;

    /** Total attached oil boundary-layer capacitance (J/K); 0 for air. */
    double oilCapacitance() const { return oilCapacitanceTotal; }

    /**
     * Vertical conduction resistance through the die thickness over
     * the whole die area, t / (k A) — the paper's Rth,Si.
     */
    double siliconVerticalResistance() const;

  private:
    struct Layer
    {
        std::string name;
        SolidMaterial mat;
        double thickness = 0.0;
        /** Die-footprint cells first (partition order), strips after. */
        std::vector<Block> rects;
        std::size_t nodeOffset = 0;
        bool cellsArePartition = false;
    };

    void buildPartition();
    void buildLayers();
    void assemble();

    /**
     * Superposition fast path (see SteadySolveOptions): answer from
     * the cached impulse-response matrix of this stack when the
     * independent residual check passes. False means the caller must
     * run the iterative chain (build failed or verification missed;
     * the stale cache entry is already invalidated).
     */
    bool trySuperposedSteady(const std::vector<double> &block_powers,
                             const std::vector<double> &node_powers,
                             const SteadySolveOptions &solve_opts,
                             SteadySolveInfo *info,
                             std::vector<double> &out) const;

    /** Average oil h over a rect for the configured flow. */
    double oilCoefficient(const Block &rect, double ext_x0, double ext_y0,
                          double ext_x1, double ext_y1) const;

    /** Oil boundary-layer capacitance attached over a rect (J/K). */
    double oilCellCapacitance(const Block &rect, double ext_x0,
                              double ext_y0, double ext_x1,
                              double ext_y1) const;

    Floorplan fp_;
    PackageConfig pkg_;
    ModelOptions opts_;

    std::vector<Block> partition_;
    std::unique_ptr<GridMapping> mapping_; ///< grid mode only
    std::vector<Layer> layers_;
    std::size_t dieLayer = 0;

    std::vector<std::string> nodeNames_;
    CsrMatrix g_;
    std::vector<double> cap_;
    std::vector<GroundStamp> grounds_;
    double primaryConductance = 0.0;
    double oilCapacitanceTotal = 0.0;
    /** Extra nodes for the split-capacitance oil variant. */
    std::size_t oilNodeOffset = 0;
    std::size_t oilNodeCount = 0;

    /** Coolant advected out of the die carries this heat away. */
    struct AdvectionOutlet
    {
        std::size_t node;
        double mcp; ///< mass flow * cp for the lane (W/K)
    };
    std::vector<AdvectionOutlet> outlets_;
    std::size_t fluidNodeOffset = 0;
    std::size_t fluidNodeCount = 0;
    bool advection = false;
};

} // namespace irtherm

#endif // IRTHERM_CORE_STACK_MODEL_HH
