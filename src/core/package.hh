/**
 * @file
 * Thermal package configurations.
 *
 * Two cooling configurations from the paper:
 *
 *  - AIR-SINK: die / TIM / copper spreader / copper heatsink with a
 *    lumped sink-to-ambient convection resistance (HotSpot's default
 *    package).
 *  - OIL-SILICON: bare die under a laminar IR-transparent oil flow,
 *    with the oil's boundary-layer heat capacitance attached at the
 *    silicon-oil interface (the paper's Fig. 7(b) lumping).
 *
 * Both may include the secondary heat transfer path (interconnect,
 * C4 + underfill, package substrate, solder balls, PCB); under
 * OIL-SILICON the PCB is cooled by a second oil stream, under
 * AIR-SINK by natural convection — which is why the secondary path
 * matters for the former and is negligible for the latter (Fig. 5).
 */

#ifndef IRTHERM_CORE_PACKAGE_HH
#define IRTHERM_CORE_PACKAGE_HH

#include "base/units.hh"
#include "materials/fluid.hh"
#include "materials/material.hh"

namespace irtherm
{

/**
 * Which cooling solution sits on the back of the die.
 *
 * AirSink and OilSilicon are the paper's two configurations;
 * Microchannel and NaturalConvection implement the paper's Sec. 2.1
 * taxonomy / Sec. 6 design-space future work.
 */
enum class CoolingKind
{
    AirSink,
    OilSilicon,
    Microchannel,
    NaturalConvection,
};

/** Direction of the oil flow across the die (floorplan coordinates). */
enum class FlowDirection
{
    LeftToRight, ///< leading edge at x = 0
    RightToLeft, ///< leading edge at x = die width
    BottomToTop, ///< leading edge at y = 0
    TopToBottom, ///< leading edge at y = die height
};

/** Human-readable name of a flow direction. */
const char *flowDirectionName(FlowDirection dir);

/** Conventional forced-air package (HotSpot default topology). */
struct AirSinkSpec
{
    double timThickness = 20e-6; // HotSpot default interface
    SolidMaterial timMaterial = materials::thermalInterface();
    double spreaderSide = 0.03;
    double spreaderThickness = 1e-3;
    SolidMaterial spreaderMaterial = materials::copper();
    double sinkSide = 0.06;
    double sinkThickness = 6.9e-3;
    SolidMaterial sinkMaterial = materials::copper();
    /** Lumped sink-to-ambient convection resistance (K/W). */
    double sinkToAmbientResistance = 1.0;
    /** Lumped convection heat capacitance (J/K), HotSpot default. */
    double convectionCapacitance = 140.4;
};

/** Laminar oil flow over the bare die. */
struct OilFlowSpec
{
    Fluid oil = fluids::irTransparentOil();
    double velocity = 10.0; ///< free-stream speed (m/s)
    FlowDirection direction = FlowDirection::LeftToRight;
    /**
     * When false, every cell uses the plate-average hL instead of
     * the local h(x); isolates the flow-direction effect (Fig. 11
     * control and the paper's Fig. 2/3 validation which implicitly
     * averages).
     */
    bool directional = true;
    /**
     * Paper Fig. 7(b): oil boundary-layer capacitance attached at the
     * silicon interface node. When false, a separate oil node splits
     * Rconv in half around the capacitance (ablation variant).
     */
    bool capacitanceAtInterface = true;
    /**
     * When true, each cell's oil capacitance uses the local
     * boundary-layer thickness dt(x) instead of the plate-trailing
     * value of Eq. 4 (ablation variant; the paper uses the overall
     * thickness).
     */
    bool localBoundaryLayerCap = false;
};

/**
 * Integrated silicon microchannel cold plate (Koo et al., cited in
 * the paper's cooling taxonomy). A channeled silicon cap is bonded
 * to the die; coolant flows through the channels. Unlike the oil
 * model's h(x), the direction dependence here is *caloric*: the
 * coolant heats up along each channel, so downstream cells see a
 * warmer fluid. That makes the conductance network non-symmetric
 * (upwind advection) — grid mode only.
 */
struct MicrochannelSpec
{
    Fluid coolant = fluids::water();
    double channelWidth = 100e-6;
    double channelHeight = 300e-6;
    double wallWidth = 100e-6;
    /** Silicon between the die top and the channel floor. */
    double baseThickness = 200e-6;
    SolidMaterial capMaterial = materials::silicon();
    /** Mean in-channel coolant velocity (m/s). */
    double flowVelocity = 1.0;
    FlowDirection direction = FlowDirection::LeftToRight;
    /** Nu for fully developed laminar flow, constant heat flux. */
    double nusselt = 4.36;

    /** Hydraulic diameter 2wh/(w+h). */
    double hydraulicDiameter() const;
    /** In-channel film coefficient Nu k / D_h (W/m^2K). */
    double filmCoefficient() const;
    /** Channel fraction of the pitch, w/(w+ww). */
    double porosity() const;
};

/** Bare die in still air (fanless, sinkless low-cost cooling). */
struct NaturalConvectionSpec
{
    /** Free-convection film coefficient over the die (W/m^2K). */
    double coefficient = 10.0;
};

/** The secondary heat transfer path of the paper's Fig. 1. */
struct SecondaryPathSpec
{
    bool enabled = true;
    double interconnectThickness = 10e-6;
    SolidMaterial interconnectMaterial = materials::interconnectStack();
    double c4Thickness = 70e-6;
    SolidMaterial c4Material = materials::c4Underfill();
    double substrateThickness = 1.2e-3;
    SolidMaterial substrateMaterial = materials::packageSubstrate();
    double solderThickness = 0.8e-3;
    SolidMaterial solderMaterial = materials::solderBalls();
    double pcbSide = 0.04;
    double pcbThickness = 1.6e-3;
    SolidMaterial pcbMaterial = materials::printedCircuitBoard();
    /** Natural-convection h for the PCB under AIR-SINK (W/m^2K). */
    double pcbNaturalConvection = 10.0;
};

/** Complete package description for one cooling configuration. */
struct PackageConfig
{
    CoolingKind cooling = CoolingKind::AirSink;
    double dieThickness = 0.5e-3;
    SolidMaterial dieMaterial = materials::silicon();
    AirSinkSpec airSink;
    OilFlowSpec oilFlow;
    MicrochannelSpec microchannel;
    NaturalConvectionSpec naturalConvection;
    SecondaryPathSpec secondary;
    /** Ambient (free stream / room) temperature in kelvin. */
    double ambient = toKelvin(45.0);

    /** Validate geometry and materials; fatal() on nonsense. */
    void check(double die_width, double die_height) const;

    /**
     * Conventional package with a given lumped convection resistance.
     * The secondary path defaults to enabled, which is harmless for
     * AIR-SINK (Fig. 5(b)).
     */
    static PackageConfig
    makeAirSink(double r_convec, double ambient_celsius = 45.0);

    /** Oil-cooled bare die at a given flow speed and direction. */
    static PackageConfig
    makeOilSilicon(double velocity,
                   FlowDirection dir = FlowDirection::LeftToRight,
                   double ambient_celsius = 45.0);

    /** Microchannel cold plate at a given in-channel velocity. */
    static PackageConfig
    makeMicrochannel(double velocity,
                     FlowDirection dir = FlowDirection::LeftToRight,
                     double ambient_celsius = 45.0);

    /** Bare die under natural convection (fanless). */
    static PackageConfig
    makeNaturalConvection(double coefficient = 10.0,
                          double ambient_celsius = 45.0);
};

/**
 * Oil velocity that yields a target overall convective resistance
 * over a plate of length @p flow_length and area @p area (inverts
 * paper Eqs. 1-2). Used for the equal-Rconv comparisons.
 */
double oilVelocityForResistance(const Fluid &oil, double flow_length,
                                double area, double target_resistance);

} // namespace irtherm

#endif // IRTHERM_CORE_PACKAGE_HH
