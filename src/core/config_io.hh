/**
 * @file
 * HotSpot-style configuration files.
 *
 * HotSpot drives its runs from a flat key/value config
 * (hotspot.config); irtherm keeps that workflow so a package and
 * discretization can be described in text instead of code:
 *
 *   # comment
 *   cooling        oil
 *   ambient        45.0        # celsius
 *   oil_velocity   10.0
 *   oil_direction  top-to-bottom
 *   model_mode     grid
 *   grid_nx        32
 *
 * Unknown keys are fatal (catching typos beats silently ignoring
 * them); omitted keys keep their defaults.
 */

#ifndef IRTHERM_CORE_CONFIG_IO_HH
#define IRTHERM_CORE_CONFIG_IO_HH

#include <iosfwd>
#include <string>

#include "core/package.hh"
#include "core/stack_model.hh"

namespace irtherm
{

/** Everything a run needs besides the floorplan and powers. */
struct SimulationConfig
{
    PackageConfig package;
    ModelOptions model;
};

/** Parse config text; fatal() on unknown keys or bad values. */
SimulationConfig parseConfig(std::istream &in);

/** Load a config file by path. */
SimulationConfig loadConfig(const std::string &path);

/** Serialize a config (round-trips through parseConfig). */
void writeConfig(std::ostream &out, const SimulationConfig &cfg);

/** Parse a flow-direction name ("left-to-right", ...). */
FlowDirection parseFlowDirection(const std::string &name);

} // namespace irtherm

#endif // IRTHERM_CORE_CONFIG_IO_HH
