#include "core/config_io.hh"

#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "base/errors.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/units.hh"

namespace irtherm
{

FlowDirection
parseFlowDirection(const std::string &name)
{
    if (name == "left-to-right")
        return FlowDirection::LeftToRight;
    if (name == "right-to-left")
        return FlowDirection::RightToLeft;
    if (name == "bottom-to-top")
        return FlowDirection::BottomToTop;
    if (name == "top-to-bottom")
        return FlowDirection::TopToBottom;
    configError("config: unknown flow direction '", name, "'");
}

SimulationConfig
parseConfig(std::istream &in)
{
    SimulationConfig cfg;
    std::string line;
    std::size_t lineno = 0;

    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments and whitespace.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::string stripped = trim(line);
        if (stripped.empty())
            continue;

        const std::vector<std::string> tok = splitWhitespace(stripped);
        if (tok.size() != 2) {
            configError("config line ", lineno,
                  ": expected '<key> <value>'");
        }
        const std::string &key = tok[0];
        const std::string &value = tok[1];
        const std::string ctx = "config line " + std::to_string(lineno);
        auto num = [&]() { return parseDouble(value, ctx); };
        auto dim = [&]() -> std::size_t {
            const double v = num();
            if (v < 1.0 || v != std::floor(v)) {
                configError(ctx, ": expected a positive integer, got '",
                            value, "'");
            }
            return static_cast<std::size_t>(v);
        };
        auto flag = [&]() {
            if (value == "1" || value == "true" || value == "yes")
                return true;
            if (value == "0" || value == "false" || value == "no")
                return false;
            configError(ctx, ": expected a boolean, got '", value, "'");
        };

        PackageConfig &p = cfg.package;
        if (key == "cooling") {
            if (value == "air") {
                p.cooling = CoolingKind::AirSink;
            } else if (value == "oil") {
                p.cooling = CoolingKind::OilSilicon;
            } else if (value == "microchannel") {
                p.cooling = CoolingKind::Microchannel;
            } else if (value == "natural") {
                p.cooling = CoolingKind::NaturalConvection;
            } else {
                configError(ctx, ": cooling must be 'air', 'oil', "
                           "'microchannel', or 'natural'");
            }
        } else if (key == "ambient") {
            p.ambient = toKelvin(num());
        } else if (key == "die_thickness") {
            p.dieThickness = num();
        } else if (key == "t_interface") {
            p.airSink.timThickness = num();
        } else if (key == "s_spreader") {
            p.airSink.spreaderSide = num();
        } else if (key == "t_spreader") {
            p.airSink.spreaderThickness = num();
        } else if (key == "s_sink") {
            p.airSink.sinkSide = num();
        } else if (key == "t_sink") {
            p.airSink.sinkThickness = num();
        } else if (key == "r_convec") {
            p.airSink.sinkToAmbientResistance = num();
        } else if (key == "c_convec") {
            p.airSink.convectionCapacitance = num();
        } else if (key == "oil_velocity") {
            p.oilFlow.velocity = num();
        } else if (key == "oil_direction") {
            p.oilFlow.direction = parseFlowDirection(value);
        } else if (key == "oil_directional") {
            p.oilFlow.directional = flag();
        } else if (key == "oil_cap_at_interface") {
            p.oilFlow.capacitanceAtInterface = flag();
        } else if (key == "oil_local_bl_cap") {
            p.oilFlow.localBoundaryLayerCap = flag();
        } else if (key == "mc_velocity") {
            p.microchannel.flowVelocity = num();
        } else if (key == "mc_direction") {
            p.microchannel.direction = parseFlowDirection(value);
        } else if (key == "mc_channel_width") {
            p.microchannel.channelWidth = num();
        } else if (key == "mc_channel_height") {
            p.microchannel.channelHeight = num();
        } else if (key == "mc_wall_width") {
            p.microchannel.wallWidth = num();
        } else if (key == "mc_base_thickness") {
            p.microchannel.baseThickness = num();
        } else if (key == "natural_h") {
            p.naturalConvection.coefficient = num();
        } else if (key == "secondary_enabled") {
            p.secondary.enabled = flag();
        } else if (key == "pcb_side") {
            p.secondary.pcbSide = num();
        } else if (key == "pcb_thickness") {
            p.secondary.pcbThickness = num();
        } else if (key == "substrate_thickness") {
            p.secondary.substrateThickness = num();
        } else if (key == "interconnect_thickness") {
            p.secondary.interconnectThickness = num();
        } else if (key == "c4_thickness") {
            p.secondary.c4Thickness = num();
        } else if (key == "solder_thickness") {
            p.secondary.solderThickness = num();
        } else if (key == "pcb_natural_h") {
            p.secondary.pcbNaturalConvection = num();
        } else if (key == "model_mode") {
            if (value == "block") {
                cfg.model.mode = ModelMode::Block;
            } else if (value == "grid") {
                cfg.model.mode = ModelMode::Grid;
            } else {
                configError(ctx, ": model_mode must be 'block' or 'grid'");
            }
        } else if (key == "grid_nx") {
            cfg.model.gridNx = dim();
        } else if (key == "grid_ny") {
            cfg.model.gridNy = dim();
        } else {
            configError(ctx, ": unknown key '", key, "'");
        }
    }
    return cfg;
}

SimulationConfig
loadConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ioError("config: cannot open '", path, "'");
    return parseConfig(in);
}

void
writeConfig(std::ostream &out, const SimulationConfig &cfg)
{
    const PackageConfig &p = cfg.package;
    std::ostringstream oss;
    oss.precision(12);
    oss << "# irtherm simulation config\n";
    const char *cooling_name = "air";
    switch (p.cooling) {
      case CoolingKind::AirSink:
        cooling_name = "air";
        break;
      case CoolingKind::OilSilicon:
        cooling_name = "oil";
        break;
      case CoolingKind::Microchannel:
        cooling_name = "microchannel";
        break;
      case CoolingKind::NaturalConvection:
        cooling_name = "natural";
        break;
    }
    oss << "cooling " << cooling_name << "\n";
    oss << "ambient " << toCelsius(p.ambient) << "\n";
    oss << "die_thickness " << p.dieThickness << "\n";
    oss << "t_interface " << p.airSink.timThickness << "\n";
    oss << "s_spreader " << p.airSink.spreaderSide << "\n";
    oss << "t_spreader " << p.airSink.spreaderThickness << "\n";
    oss << "s_sink " << p.airSink.sinkSide << "\n";
    oss << "t_sink " << p.airSink.sinkThickness << "\n";
    oss << "r_convec " << p.airSink.sinkToAmbientResistance << "\n";
    oss << "c_convec " << p.airSink.convectionCapacitance << "\n";
    oss << "oil_velocity " << p.oilFlow.velocity << "\n";
    oss << "oil_direction " << flowDirectionName(p.oilFlow.direction)
        << "\n";
    oss << "oil_directional " << (p.oilFlow.directional ? 1 : 0)
        << "\n";
    oss << "oil_cap_at_interface "
        << (p.oilFlow.capacitanceAtInterface ? 1 : 0) << "\n";
    oss << "oil_local_bl_cap "
        << (p.oilFlow.localBoundaryLayerCap ? 1 : 0) << "\n";
    oss << "mc_velocity " << p.microchannel.flowVelocity << "\n";
    oss << "mc_direction "
        << flowDirectionName(p.microchannel.direction) << "\n";
    oss << "mc_channel_width " << p.microchannel.channelWidth << "\n";
    oss << "mc_channel_height " << p.microchannel.channelHeight
        << "\n";
    oss << "mc_wall_width " << p.microchannel.wallWidth << "\n";
    oss << "mc_base_thickness " << p.microchannel.baseThickness
        << "\n";
    oss << "natural_h " << p.naturalConvection.coefficient << "\n";
    oss << "secondary_enabled " << (p.secondary.enabled ? 1 : 0)
        << "\n";
    oss << "pcb_side " << p.secondary.pcbSide << "\n";
    oss << "pcb_thickness " << p.secondary.pcbThickness << "\n";
    oss << "substrate_thickness " << p.secondary.substrateThickness
        << "\n";
    oss << "interconnect_thickness "
        << p.secondary.interconnectThickness << "\n";
    oss << "c4_thickness " << p.secondary.c4Thickness << "\n";
    oss << "solder_thickness " << p.secondary.solderThickness << "\n";
    oss << "pcb_natural_h " << p.secondary.pcbNaturalConvection
        << "\n";
    oss << "model_mode "
        << (cfg.model.mode == ModelMode::Block ? "block" : "grid")
        << "\n";
    oss << "grid_nx " << cfg.model.gridNx << "\n";
    oss << "grid_ny " << cfg.model.gridNy << "\n";
    out << oss.str();
}

} // namespace irtherm
