/**
 * @file
 * Per-thread / per-process resource sampling for job accounting.
 *
 * Two primitives:
 *  - threadCpuSeconds(): the calling thread's consumed CPU time via
 *    clock_gettime(CLOCK_THREAD_CPUTIME_ID). Sampling it before and
 *    after a job attempt charges exactly that attempt's compute to
 *    the job, regardless of what the other workers are doing.
 *  - peakRssKb(): the process-wide peak resident set from
 *    getrusage(RUSAGE_SELF). Peak RSS is a high-water mark, so
 *    per-job "usage" is reported as the *delta* the job pushed the
 *    mark up by — zero for most jobs, positive for the one that
 *    allocated the biggest grid so far.
 */

#ifndef IRTHERM_BASE_RESOURCE_USAGE_HH
#define IRTHERM_BASE_RESOURCE_USAGE_HH

#include <cstdint>

namespace irtherm
{

/** CPU seconds consumed by the calling thread so far. */
double threadCpuSeconds();

/** CPU seconds (user + system) consumed by the whole process. */
double processCpuSeconds();

/** Process peak resident set size in kilobytes (high-water mark). */
std::int64_t peakRssKb();

} // namespace irtherm

#endif // IRTHERM_BASE_RESOURCE_USAGE_HH
