#include "base/str.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "base/errors.hh"
#include "base/logging.hh"

namespace irtherm
{

std::string
trim(const std::string &s)
{
    std::size_t begin = 0;
    while (begin < s.size() &&
           std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    std::size_t end = s.size();
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return s.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string token;
    std::istringstream iss(s);
    while (std::getline(iss, token, delim))
        out.push_back(token);
    if (!s.empty() && s.back() == delim)
        out.push_back("");
    return out;
}

std::vector<std::string>
splitWhitespace(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream iss(s);
    std::string token;
    while (iss >> token)
        out.push_back(token);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

double
parseDouble(const std::string &s, const std::string &context)
{
    // Malformed numbers are user input errors: throw the taxonomy's
    // ConfigError (still a FatalError) so batch runners classify them
    // as deterministic rather than retryable.
    const std::string t = trim(s);
    if (t.empty())
        configError(context, ": empty numeric field");
    char *end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0')
        configError(context, ": invalid number '", t, "'");
    return v;
}

std::string
formatFixed(double value, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << value;
    return oss.str();
}

} // namespace irtherm
