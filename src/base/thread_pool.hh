/**
 * @file
 * Fixed-size worker pool with a deterministic parallel-for primitive.
 *
 * The numeric kernels (SpMV, BLAS-1 reductions, stencil sweeps) are
 * data-parallel over contiguous index ranges. parallelFor() splits
 * [begin, end) into fixed chunks of @p grain indices — chunk
 * boundaries depend only on (begin, end, grain), never on the thread
 * count or on scheduling — and runs the chunks across the workers
 * plus the calling thread. Because each chunk writes a disjoint
 * slice, elementwise kernels are bit-identical to a serial run no
 * matter how chunks land on threads.
 *
 * Reductions get the same guarantee through parallelReduceSum():
 * every chunk produces one partial sum, and the partials are combined
 * in ascending chunk order on the calling thread. The serial
 * fallback walks the identical chunk decomposition, so a reduction
 * computes the exact same floating-point value whether it ran on 1 or
 * N threads — this is what makes parallel and serial solver paths
 * produce bit-identical temperatures.
 *
 * Sizing: the process-wide pool (global()) reads IRTHERM_THREADS at
 * first use (setGlobalThreads() overrides it programmatically, e.g.
 * from a --threads CLI flag, if called before first use); unset/0
 * means one software thread per hardware thread. Small ranges
 * (a single chunk) and nested calls from inside a worker run inline
 * without touching the pool.
 */

#ifndef IRTHERM_BASE_THREAD_POOL_HH
#define IRTHERM_BASE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace irtherm
{

/** Fixed-size worker pool; see file comment for the determinism
 *  contract. Each instance owns threadCount() - 1 worker threads
 *  (the calling thread is the last executor). */
class ThreadPool
{
  public:
    /** Cumulative cross-instance usage counters (obs export reads
     *  these without instantiating the global pool). */
    struct Stats
    {
        std::uint64_t parallelRegions = 0; ///< parallelFor dispatches
        std::uint64_t chunks = 0;          ///< chunks run in parallel regions
        std::uint64_t serialFallbacks = 0; ///< regions run inline instead
        std::uint64_t regionNanos = 0;     ///< wall time inside parallel regions
    };

    /** @param threads total executors including the caller; >= 1. */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total executors (workers + the calling thread). */
    std::size_t threadCount() const { return workers.size() + 1; }

    /**
     * Run @p fn(chunkBegin, chunkEnd) over [begin, end) in chunks of
     * @p grain indices. Chunks must be independent (they run
     * concurrently). The first exception thrown by any chunk is
     * rethrown on the caller after all chunks finish. One region
     * runs at a time; calls from inside a worker run inline.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)> &fn);

    /**
     * Deterministic chunked reduction: sum of fn(chunkBegin,
     * chunkEnd) over the same chunk decomposition as parallelFor,
     * combined in ascending chunk order. The result is bitwise
     * independent of the thread count (including 1).
     */
    double
    parallelReduceSum(std::size_t begin, std::size_t end,
                      std::size_t grain,
                      const std::function<double(std::size_t, std::size_t)> &fn);

    /** The process-wide pool, created on first use. */
    static ThreadPool &global();

    /**
     * Request the global pool size before its first use; later calls
     * are ignored with a warning. 0 restores the IRTHERM_THREADS /
     * hardware default.
     */
    static void setGlobalThreads(std::size_t n);

    /**
     * Process-wide kill switch consulted by the numeric kernels'
     * "should I go parallel?" checks and by parallelFor itself: when
     * disabled, every region runs the serial chunked fallback.
     * Benchmarks use it to time serial-vs-parallel in one process.
     */
    static void setParallelEnabled(bool enabled);
    static bool parallelEnabled();

    /** Snapshot of the cumulative usage counters. */
    static Stats cumulativeStats();

    /** Thread count global() will use (env / override / hardware). */
    static std::size_t plannedGlobalThreads();

  private:
    /**
     * One dispatched region. Each region gets its own Job with its
     * own claim/done counters so a worker that wakes late (after the
     * region completed) can only touch an already-drained Job — never
     * the fields of the next region.
     */
    struct Job
    {
        const std::function<void(std::size_t, std::size_t)> *fn;
        std::size_t begin;
        std::size_t end;
        std::size_t grain;
        std::size_t numChunks;
        std::atomic<std::size_t> nextChunk{0};
        std::atomic<std::size_t> chunksDone{0};
        std::mutex errMu;
        std::exception_ptr firstError;
    };

    void workerLoop();
    void runChunks(Job &j);

    std::vector<std::thread> workers;

    /** Serializes concurrent callers: one region in flight at a time. */
    std::mutex regionMu;
    std::mutex mu;
    std::condition_variable wakeCv;  ///< workers wait for a new job
    std::condition_variable doneCv;  ///< caller waits for completion
    std::shared_ptr<Job> current;    ///< published under mu
    std::uint64_t generation = 0;    ///< bumped per parallelFor
    bool stopping = false;
};

} // namespace irtherm

#endif // IRTHERM_BASE_THREAD_POOL_HH
