/**
 * @file
 * Plain-text table formatting for bench and example output.
 *
 * Every bench binary reproduces one of the paper's tables or figures
 * as rows of text; TextTable keeps that output aligned and uniform.
 */

#ifndef IRTHERM_BASE_TABLE_HH
#define IRTHERM_BASE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace irtherm
{

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"unit", "T_oil (C)", "T_air (C)"});
 *   t.addRow({"IntReg", "104.9", "63.2"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Construct with header labels; the column count is fixed. */
    explicit TextTable(std::vector<std::string> header);

    /** Append one row. @pre cells.size() == column count */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a row of doubles at fixed precision. */
    void addRow(const std::string &label,
                const std::vector<double> &values, int precision = 2);

    /** Number of data rows. */
    std::size_t rowCount() const { return rows.size(); }

    /** Render with padding and a header separator line. */
    void print(std::ostream &os) const;

    /**
     * Render as RFC-4180-style CSV: header row then data rows,
     * cells containing commas/quotes/newlines double-quoted.
     */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace irtherm

#endif // IRTHERM_BASE_TABLE_HH
