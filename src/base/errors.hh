/**
 * @file
 * Error taxonomy refining base/logging.hh's FatalError.
 *
 * fatal() reports "the caller asked for something invalid" but says
 * nothing about *which layer* rejected it, which is exactly what a
 * batch runner needs to decide whether retrying can possibly help.
 * The resilience layer therefore refines FatalError into four
 * classes:
 *
 *  - ConfigError:  bad user input (config keys, plan files, scenario
 *                  settings). Deterministic; retrying is pointless.
 *  - NumericError: a solver failed (divergence, indefinite system,
 *                  non-finite values). Retryable — transient causes
 *                  (an injected fault, a poisoned warm start) clear
 *                  on a fresh attempt, and the bounded retry budget
 *                  caps the cost when the cause is persistent.
 *  - IoError:      the filesystem misbehaved (unreadable file,
 *                  failed write). Retryable.
 *  - TimeoutError: a cooperative deadline expired. Not retried by
 *                  the job runner (the watchdog owns escalation).
 *
 * Every class derives from FatalError, so existing
 * `catch (FatalError&)` sites and EXPECT_THROW(…, FatalError) tests
 * keep working unchanged. classifyException() maps any in-flight
 * exception back onto the taxonomy for journaling.
 */

#ifndef IRTHERM_BASE_ERRORS_HH
#define IRTHERM_BASE_ERRORS_HH

#include <exception>
#include <string>
#include <utility>

#include "base/logging.hh"

namespace irtherm
{

/** User configuration / input rejected; deterministic. */
class ConfigError : public FatalError
{
  public:
    explicit ConfigError(const std::string &msg) : FatalError(msg) {}
};

/** A numeric solve failed (divergence, NaN/Inf, indefinite system). */
class NumericError : public FatalError
{
  public:
    explicit NumericError(const std::string &msg) : FatalError(msg) {}
};

/** Filesystem / stream failure. */
class IoError : public FatalError
{
  public:
    explicit IoError(const std::string &msg) : FatalError(msg) {}
};

/** A cooperative deadline expired. */
class TimeoutError : public FatalError
{
  public:
    explicit TimeoutError(const std::string &msg) : FatalError(msg) {}
};

/** Journal-facing discriminator for a failed job's cause. */
enum class ErrorClass
{
    None,     ///< no error (status ok)
    Config,   ///< ConfigError
    Numeric,  ///< NumericError
    Io,       ///< IoError
    Timeout,  ///< TimeoutError / cooperative deadline
    Internal, ///< anything else (PanicError, bare FatalError, ...)
};

/** Lowercase stable name ("config", "numeric", ...). */
inline const char *
errorClassName(ErrorClass c)
{
    switch (c) {
      case ErrorClass::None:
        return "none";
      case ErrorClass::Config:
        return "config";
      case ErrorClass::Numeric:
        return "numeric";
      case ErrorClass::Io:
        return "io";
      case ErrorClass::Timeout:
        return "timeout";
      case ErrorClass::Internal:
        return "internal";
    }
    return "?";
}

/**
 * Inverse of errorClassName(). Unknown names map to Internal rather
 * than throwing so journals written by future versions still load.
 */
inline ErrorClass
parseErrorClass(const std::string &name)
{
    if (name == "none")
        return ErrorClass::None;
    if (name == "config")
        return ErrorClass::Config;
    if (name == "numeric")
        return ErrorClass::Numeric;
    if (name == "io")
        return ErrorClass::Io;
    if (name == "timeout")
        return ErrorClass::Timeout;
    return ErrorClass::Internal;
}

/**
 * Whether a fresh attempt at the same work can plausibly succeed.
 * Config errors are deterministic and timeouts are the watchdog's
 * problem; numeric and I/O failures are worth a bounded retry.
 */
inline bool
errorClassRetryable(ErrorClass c)
{
    return c == ErrorClass::Numeric || c == ErrorClass::Io;
}

/** Map a caught exception onto the taxonomy. */
inline ErrorClass
classifyException(const std::exception &e)
{
    if (dynamic_cast<const ConfigError *>(&e) != nullptr)
        return ErrorClass::Config;
    if (dynamic_cast<const NumericError *>(&e) != nullptr)
        return ErrorClass::Numeric;
    if (dynamic_cast<const IoError *>(&e) != nullptr)
        return ErrorClass::Io;
    if (dynamic_cast<const TimeoutError *>(&e) != nullptr)
        return ErrorClass::Timeout;
    return ErrorClass::Internal;
}

/** fatal() counterparts throwing the refined classes. */
template <typename... Args>
[[noreturn]] void
configError(Args &&...args)
{
    throw ConfigError(
        detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
numericError(Args &&...args)
{
    throw NumericError(
        detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
ioError(Args &&...args)
{
    throw IoError(detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
timeoutError(Args &&...args)
{
    throw TimeoutError(
        detail::formatMessage(std::forward<Args>(args)...));
}

} // namespace irtherm

#endif // IRTHERM_BASE_ERRORS_HH
