#include "base/logging.hh"

#include <atomic>
#include <iostream>
#include <mutex>

namespace irtherm
{

namespace
{

std::atomic<bool> quietFlag{false};
std::atomic<int> levelThreshold{static_cast<int>(LogLevel::Info)};

std::mutex sinkMutex;

void
defaultSink(LogLevel level, const std::string &msg)
{
    std::cerr << logLevelName(level) << ": " << msg << "\n";
}

/** Guarded by sinkMutex. An empty function means "use defaultSink". */
LogSink &
currentSink()
{
    static LogSink sink;
    return sink;
}

} // namespace

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    LogSink previous = std::move(currentSink());
    currentSink() = std::move(sink);
    return previous;
}

void
setLogLevel(LogLevel level)
{
    levelThreshold.store(static_cast<int>(level),
                         std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelThreshold.load(std::memory_order_relaxed));
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
      case LogLevel::Silent:
        return "silent";
    }
    return "?";
}

LogLevel
parseLogLevel(const std::string &text)
{
    for (LogLevel level :
         {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
          LogLevel::Error, LogLevel::Silent}) {
        if (text == logLevelName(level))
            return level;
    }
    fatal("unknown log level '", text,
          "' (expected debug|info|warn|error|silent)");
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Silent)
        return;
    if (static_cast<int>(level) <
        levelThreshold.load(std::memory_order_relaxed))
        return;
    if (quietFlag.load(std::memory_order_relaxed) &&
        level < LogLevel::Error)
        return;

    LogSink sink;
    {
        std::lock_guard<std::mutex> lock(sinkMutex);
        sink = currentSink();
    }
    if (sink)
        sink(level, msg);
    else
        defaultSink(level, msg);
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

} // namespace irtherm
