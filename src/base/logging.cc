#include "base/logging.hh"

#include <atomic>
#include <iostream>

namespace irtherm
{

namespace
{

std::atomic<bool> quietFlag{false};

} // namespace

void
warn(const std::string &msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << "\n";
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

} // namespace irtherm
