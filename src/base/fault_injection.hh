/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * The resilience layer (solver fallback chains, job retry, journal
 * quarantine) only earns its keep if its failure paths are actually
 * exercised, so irtherm compiles a FaultInjector into every build —
 * inert unless explicitly armed. The hot-path cost of a disarmed
 * injector is one relaxed atomic load per probe site.
 *
 * Arming: programmatically via FaultInjector::global().arm(spec), or
 * from the environment (IRTHERM_FAULTS) / the CLI (`sweep --faults`).
 * A spec is a comma-separated list of rules:
 *
 *     point[:opt=value]...
 *
 * Points probed by the codebase:
 *     cg.nan            poison the CG residual with a NaN
 *     cg.diverge        force the iterative solve to report divergence
 *     mg.diverge        poison one multigrid V-cycle output with NaN
 *                       (robust_solve must demote mg-cg to ssor-cg)
 *     impulse.corrupt   poison one column of a freshly built
 *                       impulse-response matrix with large finite
 *                       garbage (only the independent residual check
 *                       can catch it; the job must demote to the
 *                       iterative chain and still complete)
 *     job.stall         sleep inside a sweep job (watchdog bait)
 *     journal.corrupt   scramble bytes of one journal line
 *     journal.truncate  write only a prefix of one journal line
 *     journal.torn_segment  kill mid-segment-seal: only a prefix of
 *                       a columnar segment reaches disk, and the
 *                       writer stops sealing/checkpointing after it
 *                       (resume must quarantine the segment and
 *                       recover its rows from the JSONL tail)
 *     lease.lost        fabric coordinator forgets a live lease (as
 *                       if it expired); the holder's next renew gets
 *                       410 and the jobs are re-leased — completes
 *                       for them must still land exactly once
 *     worker.die        fabric worker dies after leasing a batch but
 *                       before completing it (stops renewing and
 *                       reporting); the lease must expire and the
 *                       jobs re-lease with zero duplicate work
 *     complete.dup      fabric worker re-sends a successful
 *                       /complete batch; the coordinator must drop
 *                       every row as a duplicate
 *     cache.corrupt     scramble a shared result-cache entry as it is
 *                       read; the cache must evict the entry and
 *                       report a miss — a corrupt entry is never
 *                       served as a result
 *     ckpt.corrupt      scramble the aggregates checkpoint on disk as
 *                       resume opens it; resume must discard it and
 *                       fall back to the full JSONL scan
 *
 * The catalog above is exported programmatically as
 * FaultInjector::knownPoints() (name + layer + effect + expected
 * recovery), and the `faultpoint` namespace names each point as a
 * constant so probe sites and tests never spell a raw string that
 * arm() could not have validated.
 *
 * Rule options:
 *     match=<substr>  only fire when the probe's scope key (e.g. the
 *                     sweep job name) contains <substr>
 *     count=<n>       fire at most n times (default 1)
 *     after=<k>       skip the first k matching probes (default 0)
 *     prob=<p>        fire with probability p per eligible probe,
 *                     drawn from the injector's own seeded Rng —
 *                     deterministic run-to-run (default 1)
 *     seconds=<s>     payload parameter (job.stall duration, 0.2 s
 *                     default)
 *
 * Options bind to their rule with ':'; rules separate with ','.
 * Example: IRTHERM_FAULTS="cg.nan:match=hot:count=2,job.stall:seconds=0.5"
 *
 * Probes report through obs: counter `resilience.faults.injected`
 * and an event per fire, so an armed run leaves an audit trail.
 */

#ifndef IRTHERM_BASE_FAULT_INJECTION_HH
#define IRTHERM_BASE_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/rng.hh"

namespace irtherm
{

/**
 * The injection points the codebase probes, as constants. Probe sites
 * and fault-spec generators reference these instead of raw string
 * literals, so a renamed point is a compile error, not a probe that
 * silently never fires.
 */
namespace faultpoint
{
inline constexpr const char *CgNan = "cg.nan";
inline constexpr const char *CgDiverge = "cg.diverge";
inline constexpr const char *MgDiverge = "mg.diverge";
inline constexpr const char *ImpulseCorrupt = "impulse.corrupt";
inline constexpr const char *JobStall = "job.stall";
inline constexpr const char *JournalCorrupt = "journal.corrupt";
inline constexpr const char *JournalTruncate = "journal.truncate";
inline constexpr const char *JournalTornSegment =
    "journal.torn_segment";
inline constexpr const char *LeaseLost = "lease.lost";
inline constexpr const char *WorkerDie = "worker.die";
inline constexpr const char *CompleteDup = "complete.dup";
inline constexpr const char *CacheCorrupt = "cache.corrupt";
inline constexpr const char *CkptCorrupt = "ckpt.corrupt";
} // namespace faultpoint

/** One entry of the programmatic fault-point catalog. */
struct FaultPoint
{
    const char *name;     ///< spec name, e.g. "cg.nan"
    const char *layer;    ///< subsystem that probes it
    const char *effect;   ///< what firing does
    const char *recovery; ///< what the system must do about it
};

class FaultInjector
{
  public:
    /**
     * Process-wide injector. First access parses IRTHERM_FAULTS from
     * the environment (empty/unset leaves it disarmed).
     */
    static FaultInjector &global();

    /**
     * Every injection point the codebase probes, with its layer,
     * effect, and expected recovery. arm() validates specs against
     * exactly this list; the campaign driver draws from it; the
     * DESIGN §14 table documents it.
     */
    static const std::vector<FaultPoint> &knownPoints();

    /**
     * Replace all rules with @p spec (see file comment for the
     * grammar); ConfigError on a malformed spec. An empty spec
     * disarms.
     */
    void arm(const std::string &spec);

    /** Remove every rule; probes return to the single-load path. */
    void disarm();

    /** True when at least one rule is loaded. */
    bool
    armed() const
    {
        return armedFlag.load(std::memory_order_relaxed);
    }

    /**
     * Probe: should the fault at @p point fire now? @p key is the
     * probe's scope (the current ScopedContext when empty). Updates
     * occurrence counters — a firing rule is consumed toward its
     * `count`. Always false when disarmed.
     */
    bool shouldFire(const char *point, const std::string &key = {});

    /**
     * Numeric payload of the most specific armed rule for @p point
     * (e.g. seconds for job.stall); @p fallback when absent.
     */
    double param(const char *point, const char *name,
                 double fallback) const;

    /** Total fires across all rules since the last arm(). */
    std::uint64_t fired() const;

    /**
     * RAII scope key: probes without an explicit key (deep in the
     * numeric layer) match against the innermost active context on
     * the current thread, so a sweep job can be targeted by name
     * from any depth.
     */
    class ScopedContext
    {
      public:
        explicit ScopedContext(std::string key);
        ~ScopedContext();
        ScopedContext(const ScopedContext &) = delete;
        ScopedContext &operator=(const ScopedContext &) = delete;
    };

    /** Innermost active context key on this thread ("" when none). */
    static const std::string &currentContext();

  private:
    struct Rule
    {
        std::string point;
        std::string match; ///< substring filter on the scope key
        std::uint64_t count = 1;
        std::uint64_t after = 0;
        double prob = 1.0;
        /** name=value payload options (e.g. seconds). */
        std::vector<std::pair<std::string, double>> params;
        // Mutable occurrence state.
        std::uint64_t seen = 0;
        std::uint64_t firedCount = 0;
    };

    std::atomic<bool> armedFlag{false};
    mutable std::mutex mu;
    std::vector<Rule> rules;
    Rng rng; ///< deterministic prob= draws
    std::uint64_t totalFired = 0;
};

} // namespace irtherm

#endif // IRTHERM_BASE_FAULT_INJECTION_HH
