#include "base/rng.hh"

#include "base/logging.hh"

namespace irtherm
{

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    if (weights.empty())
        fatal("weightedIndex: empty weight vector");

    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("weightedIndex: negative weight ", w);
        total += w;
    }
    if (total <= 0.0)
        fatal("weightedIndex: weights sum to zero");

    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::size_t
SplitMix64::weightedIndex(const std::vector<double> &weights)
{
    if (weights.empty())
        fatal("weightedIndex: empty weight vector");

    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("weightedIndex: negative weight ", w);
        total += w;
    }
    if (total <= 0.0)
        fatal("weightedIndex: weights sum to zero");

    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace irtherm
