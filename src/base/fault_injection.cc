#include "base/fault_injection.hh"

#include <cstdlib>

#include "base/errors.hh"
#include "base/str.hh"

namespace irtherm
{

namespace
{

/** Innermost-first stack of scope keys for the current thread. */
thread_local std::vector<std::string> contextStack;

const std::string emptyKey;

bool
knownPoint(const std::string &p)
{
    for (const FaultPoint &k : FaultInjector::knownPoints()) {
        if (p == k.name)
            return true;
    }
    return false;
}

/** Comma-separated point names, for the unknown-point diagnostic. */
std::string
knownPointList()
{
    std::string out;
    for (const FaultPoint &k : FaultInjector::knownPoints()) {
        if (!out.empty())
            out += ", ";
        out += k.name;
    }
    return out;
}

/** parseDouble, but spec errors keep the ConfigError contract. */
double
parseSpecNumber(const std::string &value, const std::string &ctx)
{
    try {
        return parseDouble(value, ctx);
    } catch (const FatalError &e) {
        configError(e.what());
    }
}

} // namespace

const std::vector<FaultPoint> &
FaultInjector::knownPoints()
{
    using namespace faultpoint;
    static const std::vector<FaultPoint> catalog = {
        {CgNan, "numeric/iterative",
         "poison the CG residual with a NaN",
         "solver fallback chain demotes; job retries and completes"},
        {CgDiverge, "numeric/iterative",
         "force the iterative solve to report divergence",
         "fallback chain demotes to the next solver tier"},
        {MgDiverge, "numeric/multigrid",
         "poison one multigrid V-cycle output with NaN",
         "robust_solve demotes mg-cg to ssor-cg"},
        {ImpulseCorrupt, "numeric/impulse_cache",
         "poison one column of a fresh impulse-response matrix",
         "independent residual check rejects it; job demotes to the "
         "iterative chain"},
        {JobStall, "sweep/runner",
         "sleep inside a sweep job (seconds= payload)",
         "cooperative deadline or watchdog times the job out"},
        {JournalCorrupt, "sweep/result_store",
         "scramble the bytes of one journal line",
         "resume quarantines the line and re-runs the job"},
        {JournalTruncate, "sweep/result_store",
         "write only a prefix of one journal line",
         "resume quarantines the merged line and re-runs the job"},
        {JournalTornSegment, "sweep/segment",
         "seal only a prefix of a columnar segment",
         "resume quarantines the segment (.torn) and recovers rows "
         "from the JSONL tail"},
        {LeaseLost, "fabric/coordinator",
         "coordinator forgets a live lease as if it expired",
         "holder's renew gets 410; jobs re-lease; completes land "
         "exactly once"},
        {WorkerDie, "fabric/worker",
         "worker dies after leasing a batch, before completing it",
         "lease TTL lapses; jobs re-lease with zero duplicate work"},
        {CompleteDup, "fabric/worker",
         "worker re-sends a successful /complete batch",
         "coordinator classifies every row as a duplicate"},
        {CacheCorrupt, "fabric/result_cache",
         "scramble a shared result-cache entry as it is read",
         "entry is evicted and reported as a miss, never served"},
        {CkptCorrupt, "sweep/result_store",
         "scramble the aggregates checkpoint as resume opens it",
         "checkpoint is discarded; resume falls back to the full "
         "JSONL scan"},
    };
    return catalog;
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector *injector = [] {
        auto *inj = new FaultInjector;
        if (const char *env = std::getenv("IRTHERM_FAULTS");
            env != nullptr && env[0] != '\0')
            inj->arm(env);
        return inj;
    }();
    return *injector;
}

void
FaultInjector::arm(const std::string &spec)
{
    std::vector<Rule> parsed;
    for (const std::string &ruleText : split(spec, ',')) {
        const std::string stripped = trim(ruleText);
        if (stripped.empty())
            continue;
        const std::vector<std::string> parts = split(stripped, ':');
        Rule rule;
        rule.point = trim(parts[0]);
        if (!knownPoint(rule.point)) {
            configError("faults: unknown injection point '",
                        rule.point, "' (known points: ",
                        knownPointList(), ")");
        }
        for (std::size_t i = 1; i < parts.size(); ++i) {
            const std::string opt = trim(parts[i]);
            const std::size_t eq = opt.find('=');
            if (eq == std::string::npos || eq == 0) {
                configError("faults: rule '", stripped,
                            "': option '", opt,
                            "' is not <name>=<value>");
            }
            const std::string name = opt.substr(0, eq);
            const std::string value = opt.substr(eq + 1);
            const std::string ctx = "faults option " + name;
            if (name == "match") {
                rule.match = value;
            } else if (name == "count") {
                rule.count = static_cast<std::uint64_t>(
                    parseSpecNumber(value, ctx));
            } else if (name == "after") {
                rule.after = static_cast<std::uint64_t>(
                    parseSpecNumber(value, ctx));
            } else if (name == "prob") {
                rule.prob = parseSpecNumber(value, ctx);
                if (rule.prob < 0.0 || rule.prob > 1.0) {
                    configError("faults: prob must be in [0, 1], got ",
                                rule.prob);
                }
            } else {
                rule.params.emplace_back(name,
                                         parseSpecNumber(value, ctx));
            }
        }
        parsed.push_back(std::move(rule));
    }

    std::lock_guard<std::mutex> lock(mu);
    rules = std::move(parsed);
    totalFired = 0;
    rng = Rng(); // deterministic prob= draws per arm()
    armedFlag.store(!rules.empty(), std::memory_order_relaxed);
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mu);
    rules.clear();
    armedFlag.store(false, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFire(const char *point, const std::string &key)
{
    if (!armed())
        return false;
    const std::string &scope = key.empty() ? currentContext() : key;
    std::lock_guard<std::mutex> lock(mu);
    for (Rule &rule : rules) {
        if (rule.point != point)
            continue;
        if (!rule.match.empty() &&
            scope.find(rule.match) == std::string::npos)
            continue;
        const std::uint64_t occurrence = rule.seen++;
        if (occurrence < rule.after)
            continue;
        if (rule.firedCount >= rule.count)
            continue;
        if (rule.prob < 1.0 && rng.uniform() >= rule.prob)
            continue;
        ++rule.firedCount;
        ++totalFired;
        warn("fault injected: ", point,
             scope.empty() ? "" : " [" + scope + "]", " (fire ",
             rule.firedCount, "/", rule.count, ")");
        return true;
    }
    return false;
}

double
FaultInjector::param(const char *point, const char *name,
                     double fallback) const
{
    if (!armed())
        return fallback;
    std::lock_guard<std::mutex> lock(mu);
    for (const Rule &rule : rules) {
        if (rule.point != point)
            continue;
        for (const auto &[pname, value] : rule.params) {
            if (pname == name)
                return value;
        }
    }
    return fallback;
}

std::uint64_t
FaultInjector::fired() const
{
    std::lock_guard<std::mutex> lock(mu);
    return totalFired;
}

FaultInjector::ScopedContext::ScopedContext(std::string key)
{
    contextStack.push_back(std::move(key));
}

FaultInjector::ScopedContext::~ScopedContext()
{
    contextStack.pop_back();
}

const std::string &
FaultInjector::currentContext()
{
    return contextStack.empty() ? emptyKey : contextStack.back();
}

} // namespace irtherm
