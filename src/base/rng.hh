/**
 * @file
 * Deterministic random-number generation.
 *
 * Every stochastic component in irtherm (workload generators, sensor
 * noise) takes an explicit Rng so that benches and tests are exactly
 * reproducible run-to-run.
 */

#ifndef IRTHERM_BASE_RNG_HH
#define IRTHERM_BASE_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace irtherm
{

/**
 * Thin deterministic wrapper over std::mt19937_64.
 *
 * Exposes just the draws irtherm needs; keeping the interface small
 * makes it easy to audit where randomness enters a simulation.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; the default seed is fixed. */
    explicit Rng(std::uint64_t seed = 0x1d5eedULL) : engine(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return std::normal_distribution<double>(mean, sigma)(engine);
    }

    /** Uniform integer in [0, n). @pre n > 0 */
    std::size_t
    index(std::size_t n)
    {
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine);
    }

    /**
     * Sample an index from a discrete distribution given by
     * non-negative weights. Weights need not be normalized.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

  private:
    std::mt19937_64 engine;
};

} // namespace irtherm

#endif // IRTHERM_BASE_RNG_HH
