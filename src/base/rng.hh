/**
 * @file
 * Deterministic random-number generation.
 *
 * Every stochastic component in irtherm (workload generators, sensor
 * noise) takes an explicit Rng so that benches and tests are exactly
 * reproducible run-to-run.
 *
 * Two generators live here with different contracts:
 *
 *  - Rng wraps std::mt19937_64 + the standard distributions. Fast and
 *    statistically fine, but distribution *outputs* are
 *    implementation-defined, so two stdlibs may disagree draw for
 *    draw. Use it when "same binary, same sequence" is enough.
 *  - SplitMix64 is fully specified down to the bit: every draw is
 *    defined by this header alone, so a 64-bit seed replays the exact
 *    same sequence on any platform or stdlib. The fault-campaign
 *    driver (src/campaign/) requires this — a campaign seed printed
 *    by nightly CI must replay bit-for-bit on a developer machine.
 */

#ifndef IRTHERM_BASE_RNG_HH
#define IRTHERM_BASE_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace irtherm
{

/**
 * Thin deterministic wrapper over std::mt19937_64.
 *
 * Exposes just the draws irtherm needs; keeping the interface small
 * makes it easy to audit where randomness enters a simulation.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; the default seed is fixed. */
    explicit Rng(std::uint64_t seed = 0x1d5eedULL) : engine(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return std::normal_distribution<double>(mean, sigma)(engine);
    }

    /** Uniform integer in [0, n). @pre n > 0 */
    std::size_t
    index(std::size_t n)
    {
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine);
    }

    /**
     * Sample an index from a discrete distribution given by
     * non-negative weights. Weights need not be normalized.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

  private:
    std::mt19937_64 engine;
};

/**
 * Fully specified splittable PRNG (Steele/Lea/Flood splitmix64).
 *
 * Unlike Rng, no draw here goes through a std distribution: uniform(),
 * index(), range(), chance(), and weightedIndex() are all defined in
 * terms of next()'s exact 64-bit output, so a seed replays the
 * identical sequence across compilers, stdlibs, and platforms.
 * child(n) derives an independent stream from the *construction* seed
 * (not the current state), so derived streams do not depend on how
 * many draws the parent has made — a campaign cycle is a pure
 * function of (seed, cycle index).
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed = 0) noexcept
        : origin(seed), state(seed)
    {
    }

    /** Next raw 64-bit draw (the canonical splitmix64 mix). */
    std::uint64_t
    next() noexcept
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1) with 53 significant bits. */
    double
    uniform() noexcept
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi) noexcept
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @pre n > 0 */
    std::size_t
    index(std::size_t n) noexcept
    {
        return static_cast<std::size_t>(next() %
                                        static_cast<std::uint64_t>(n));
    }

    /** Uniform integer in [lo, hi] (inclusive). @pre lo <= hi */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi) noexcept
    {
        return lo + next() % (hi - lo + 1);
    }

    /** True with probability @p p. */
    bool
    chance(double p) noexcept
    {
        return uniform() < p;
    }

    /**
     * Sample an index from a discrete distribution given by
     * non-negative weights (need not be normalized); fatal() on an
     * empty or all-zero weight vector.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /**
     * Independent stream @p n derived from the construction seed.
     * Stateless with respect to this generator's draw position.
     */
    SplitMix64
    child(std::uint64_t n) const noexcept
    {
        // One splitmix step over (origin, n) decorrelates the child
        // seed from both inputs.
        SplitMix64 mix(origin ^
                       (0x9e3779b97f4a7c15ULL * (n + 1)));
        return SplitMix64(mix.next());
    }

    /** The seed this generator (or stream) was constructed with. */
    std::uint64_t
    seed() const noexcept
    {
        return origin;
    }

  private:
    std::uint64_t origin;
    std::uint64_t state;
};

} // namespace irtherm

#endif // IRTHERM_BASE_RNG_HH
