/**
 * @file
 * Physical constants and unit helpers.
 *
 * All irtherm quantities are SI unless a name says otherwise: meters,
 * seconds, watts, kelvin, kg. Temperatures are carried in kelvin
 * internally; celsius conversions are provided for reporting because
 * the paper quotes everything in degrees C.
 */

#ifndef IRTHERM_BASE_UNITS_HH
#define IRTHERM_BASE_UNITS_HH

namespace irtherm
{

/** 0 degrees Celsius in kelvin. */
constexpr double zeroCelsiusInKelvin = 273.15;

/** Convert a temperature from kelvin to celsius. */
constexpr double
toCelsius(double kelvin)
{
    return kelvin - zeroCelsiusInKelvin;
}

/** Convert a temperature from celsius to kelvin. */
constexpr double
toKelvin(double celsius)
{
    return celsius + zeroCelsiusInKelvin;
}

/** Millimeters to meters. */
constexpr double
fromMillimeters(double mm)
{
    return mm * 1e-3;
}

/** Micrometers to meters. */
constexpr double
fromMicrometers(double um)
{
    return um * 1e-6;
}

/** Milliseconds to seconds. */
constexpr double
fromMilliseconds(double ms)
{
    return ms * 1e-3;
}

/** Microseconds to seconds. */
constexpr double
fromMicroseconds(double us)
{
    return us * 1e-6;
}

} // namespace irtherm

#endif // IRTHERM_BASE_UNITS_HH
