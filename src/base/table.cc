#include "base/table.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/str.hh"

namespace irtherm
{

TextTable::TextTable(std::vector<std::string> header_)
    : header(std::move(header_))
{
    if (header.empty())
        fatal("TextTable: header must have at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header.size()) {
        fatal("TextTable: row has ", cells.size(), " cells, expected ",
              header.size());
    }
    rows.push_back(std::move(cells));
}

void
TextTable::addRow(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatFixed(v, precision));
    addRow(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                os << std::string(widths[c] - row[c].size() + 2, ' ');
            }
        }
        os << "\n";
    };

    print_row(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        print_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto cell = [](const std::string &s) {
        if (s.find_first_of(",\"\n\r") == std::string::npos)
            return s;
        std::string quoted = "\"";
        for (char c : s) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    };
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                os << ",";
            os << cell(row[c]);
        }
        os << "\n";
    };
    print_row(header);
    for (const auto &row : rows)
        print_row(row);
}

} // namespace irtherm
