/**
 * @file
 * Cooperative process shutdown flag for SIGINT/SIGTERM.
 *
 * Long-running loops (the sweep scheduler, the fabric coordinator and
 * worker) poll shutdownRequested() at their claim points and drain
 * instead of dying mid-write: the journal flushes, the open segment
 * seals, and a final aggregates checkpoint lands before exit. The
 * handler itself only sets an atomic — everything async-signal-unsafe
 * happens on the polling thread.
 *
 * Installation is explicit (installShutdownHandlers(), typically from
 * main()) so library users and tests keep their own signal disposition
 * unless they opt in; tests drive the flag directly with
 * requestShutdown() / resetShutdown().
 */

#ifndef IRTHERM_BASE_SHUTDOWN_HH
#define IRTHERM_BASE_SHUTDOWN_HH

namespace irtherm
{

/** Route SIGINT and SIGTERM to the shutdown flag. Idempotent. */
void installShutdownHandlers();

/** True once a shutdown signal (or requestShutdown()) arrived. */
bool shutdownRequested();

/** Set the flag programmatically (tests, embedders). */
void requestShutdown();

/** Clear the flag (between tests / sequential runs in one process). */
void resetShutdown();

} // namespace irtherm

#endif // IRTHERM_BASE_SHUTDOWN_HH
