#include "base/resource_usage.hh"

#include <ctime>
#include <sys/resource.h>

namespace irtherm
{

double
threadCpuSeconds()
{
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
#endif
    return processCpuSeconds(); // degraded but monotone fallback
}

double
processCpuSeconds()
{
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    const auto toSeconds = [](const timeval &tv) {
        return static_cast<double>(tv.tv_sec) + 1e-6 * tv.tv_usec;
    };
    return toSeconds(ru.ru_utime) + toSeconds(ru.ru_stime);
}

std::int64_t
peakRssKb()
{
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes already.
    return static_cast<std::int64_t>(ru.ru_maxrss);
}

} // namespace irtherm
