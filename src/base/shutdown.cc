#include "base/shutdown.hh"

#include <atomic>
#include <csignal>

namespace irtherm
{

namespace
{

std::atomic<bool> requested{false};

extern "C" void
onShutdownSignal(int)
{
    requested.store(true, std::memory_order_relaxed);
}

} // namespace

void
installShutdownHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: a coordinator blocked in accept()/recv() should
    // see EINTR and fall through to its shutdown check promptly.
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool
shutdownRequested()
{
    return requested.load(std::memory_order_relaxed);
}

void
requestShutdown()
{
    requested.store(true, std::memory_order_relaxed);
}

void
resetShutdown()
{
    requested.store(false, std::memory_order_relaxed);
}

} // namespace irtherm
