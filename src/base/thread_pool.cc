#include "base/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "base/logging.hh"

namespace irtherm
{

namespace
{

// Cumulative usage counters, aggregated across every pool instance so
// the obs exporter can report them without owning a pool.
std::atomic<std::uint64_t> g_regions{0};
std::atomic<std::uint64_t> g_chunks{0};
std::atomic<std::uint64_t> g_serialFallbacks{0};
std::atomic<std::uint64_t> g_regionNanos{0};

std::atomic<bool> g_parallelEnabled{true};

// Requested size for the global pool; 0 = env / hardware default.
std::atomic<std::size_t> g_requestedThreads{0};
std::atomic<bool> g_globalCreated{false};

// Workers must never dispatch a nested region back into the pool:
// the pool runs one region at a time and a nested wait would
// deadlock. Nested calls run inline instead.
thread_local bool t_insideWorker = false;

std::size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("IRTHERM_THREADS")) {
        char *endp = nullptr;
        const long v = std::strtol(env, &endp, 10);
        if (endp != env && *endp == '\0' && v > 0)
            return static_cast<std::size_t>(std::min<long>(v, 256));
        if (*env != '\0')
            warn("IRTHERM_THREADS='", env,
                 "' is not a positive integer; using hardware count");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::size_t
chunkCount(std::size_t begin, std::size_t end, std::size_t grain)
{
    return (end - begin + grain - 1) / grain;
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        fatal("ThreadPool: thread count must be >= 1");
    workers.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    wakeCv.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::workerLoop()
{
    t_insideWorker = true;
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> j;
        {
            std::unique_lock<std::mutex> lock(mu);
            wakeCv.wait(lock, [&] {
                return stopping || (current && generation != seen);
            });
            if (stopping)
                return;
            seen = generation;
            j = current;
        }
        runChunks(*j);
    }
}

void
ThreadPool::runChunks(Job &j)
{
    // Claim chunks dynamically; determinism is unaffected because
    // chunk *boundaries* are fixed and reductions recombine partials
    // by chunk index, not by completion order.
    std::size_t c;
    while ((c = j.nextChunk.fetch_add(1, std::memory_order_relaxed)) <
           j.numChunks) {
        const std::size_t b = j.begin + c * j.grain;
        const std::size_t e = std::min(j.end, b + j.grain);
        try {
            (*j.fn)(b, e);
        } catch (...) {
            std::lock_guard<std::mutex> lock(j.errMu);
            if (!j.firstError)
                j.firstError = std::current_exception();
        }
        if (j.chunksDone.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            j.numChunks) {
            // Last chunk: wake the caller. Taking the pool lock
            // pairs with the caller's wait so the notify is not lost.
            std::lock_guard<std::mutex> lock(mu);
            doneCv.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (end <= begin)
        return;
    if (grain == 0)
        fatal("ThreadPool::parallelFor: zero grain");

    const std::size_t total = chunkCount(begin, end, grain);
    if (workers.empty() || total == 1 || t_insideWorker ||
        !parallelEnabled()) {
        g_serialFallbacks.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t b = begin; b < end; b += grain)
            fn(b, std::min(end, b + grain));
        return;
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> region(regionMu);
    auto j = std::make_shared<Job>();
    j->fn = &fn;
    j->begin = begin;
    j->end = end;
    j->grain = grain;
    j->numChunks = total;
    {
        std::lock_guard<std::mutex> lock(mu);
        current = j;
        ++generation;
    }
    wakeCv.notify_all();

    // The caller is an executor too. While it runs chunks it is
    // "inside" the region exactly like a worker: a nested parallelFor
    // issued from one of its own chunks must take the inline path, or
    // it would re-lock regionMu and self-deadlock.
    t_insideWorker = true;
    runChunks(*j);
    t_insideWorker = false;

    {
        std::unique_lock<std::mutex> lock(mu);
        doneCv.wait(lock, [&] {
            return j->chunksDone.load(std::memory_order_acquire) ==
                   total;
        });
        current.reset();
    }

    g_regions.fetch_add(1, std::memory_order_relaxed);
    g_chunks.fetch_add(total, std::memory_order_relaxed);
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    g_regionNanos.fetch_add(static_cast<std::uint64_t>(ns),
                            std::memory_order_relaxed);

    if (j->firstError)
        std::rethrow_exception(j->firstError);
}

double
ThreadPool::parallelReduceSum(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<double(std::size_t, std::size_t)> &fn)
{
    if (end <= begin)
        return 0.0;
    if (grain == 0)
        fatal("ThreadPool::parallelReduceSum: zero grain");

    const std::size_t total = chunkCount(begin, end, grain);
    if (workers.empty() || total == 1 || t_insideWorker ||
        !parallelEnabled()) {
        // Same chunk walk as the parallel path so the summation
        // order — and therefore the bits — match exactly.
        g_serialFallbacks.fetch_add(1, std::memory_order_relaxed);
        double acc = 0.0;
        for (std::size_t b = begin; b < end; b += grain)
            acc += fn(b, std::min(end, b + grain));
        return acc;
    }

    std::vector<double> partials(total, 0.0);
    parallelFor(begin, end, grain,
                [&](std::size_t b, std::size_t e) {
                    partials[(b - begin) / grain] = fn(b, e);
                });
    double acc = 0.0;
    for (double p : partials)
        acc += p;
    return acc;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(plannedGlobalThreads());
    g_globalCreated.store(true, std::memory_order_relaxed);
    return pool;
}

std::size_t
ThreadPool::plannedGlobalThreads()
{
    const std::size_t req =
        g_requestedThreads.load(std::memory_order_relaxed);
    return req > 0 ? req : defaultThreadCount();
}

void
ThreadPool::setGlobalThreads(std::size_t n)
{
    if (g_globalCreated.load(std::memory_order_relaxed)) {
        warn("ThreadPool::setGlobalThreads(", n,
             ") ignored: global pool already created");
        return;
    }
    g_requestedThreads.store(n, std::memory_order_relaxed);
}

void
ThreadPool::setParallelEnabled(bool enabled)
{
    g_parallelEnabled.store(enabled, std::memory_order_relaxed);
}

bool
ThreadPool::parallelEnabled()
{
    return g_parallelEnabled.load(std::memory_order_relaxed);
}

ThreadPool::Stats
ThreadPool::cumulativeStats()
{
    Stats s;
    s.parallelRegions = g_regions.load(std::memory_order_relaxed);
    s.chunks = g_chunks.load(std::memory_order_relaxed);
    s.serialFallbacks =
        g_serialFallbacks.load(std::memory_order_relaxed);
    s.regionNanos = g_regionNanos.load(std::memory_order_relaxed);
    return s;
}

} // namespace irtherm
