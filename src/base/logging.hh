/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, invalid arguments), panic() is for internal
 * invariant violations that should never happen regardless of user
 * input. Because irtherm is a library rather than a standalone
 * simulator, both report via exceptions so embedding applications and
 * tests can recover.
 *
 * Non-throwing diagnostics route through a pluggable sink with
 * severity levels: debugLog() < inform() < warn(). The default sink
 * writes "level: message" lines to stderr; setLogSink() lets an
 * embedding application redirect everything (e.g. into its own
 * logger or an event trace), and setLogLevel() filters by severity
 * before the message string is even built. setQuiet() is the legacy
 * big hammer kept for tests: while quiet, nothing reaches the sink
 * regardless of level.
 */

#ifndef IRTHERM_BASE_LOGGING_HH
#define IRTHERM_BASE_LOGGING_HH

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace irtherm
{

/** Exception thrown by fatal(): the caller asked for something invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/** Severity of a non-throwing diagnostic. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,  ///< reserved for sinks; fatal()/panic() still throw
    Silent = 4, ///< threshold-only value: suppresses everything
};

/** Receives every emitted diagnostic that passes the level filter. */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Replace the diagnostic sink. Passing an empty function restores
 * the default stderr sink. Returns the previous sink.
 */
LogSink setLogSink(LogSink sink);

/** Drop messages below @p level (default LogLevel::Info). */
void setLogLevel(LogLevel level);

/** Current severity threshold. */
LogLevel logLevel();

/** Lowercase name ("debug", "info", "warn", "error", "silent"). */
const char *logLevelName(LogLevel level);

/** Parse a level name (case-sensitive, as printed); fatal() otherwise. */
LogLevel parseLogLevel(const std::string &text);

/**
 * Deliver @p msg at @p level to the sink, applying the level
 * threshold and the quiet flag. Building the message is the
 * caller's job; prefer warn()/inform()/debugLog(), which skip
 * formatting entirely for filtered-out levels.
 */
void logMessage(LogLevel level, const std::string &msg);

/** Globally silence everything below Error (useful in tests). */
void setQuiet(bool quiet);

namespace detail
{

/** Fold a parameter pack into one message string via operator<<. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an unrecoverable user-level error (bad config, bad input).
 *
 * @param args Message fragments, concatenated via operator<<.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::formatMessage(std::forward<Args>(args)...));
}

/**
 * Report an internal invariant violation (a bug in irtherm itself).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::formatMessage(std::forward<Args>(args)...));
}

/** Emit a warning; execution continues. Fragments fold via operator<<. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() <= LogLevel::Warn) {
        logMessage(LogLevel::Warn,
                   detail::formatMessage(std::forward<Args>(args)...));
    }
}

/** Emit an informational message; execution continues. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() <= LogLevel::Info) {
        logMessage(LogLevel::Info,
                   detail::formatMessage(std::forward<Args>(args)...));
    }
}

/** Emit a debug-level message (off unless setLogLevel(Debug)). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() <= LogLevel::Debug) {
        logMessage(LogLevel::Debug,
                   detail::formatMessage(std::forward<Args>(args)...));
    }
}

} // namespace irtherm

#endif // IRTHERM_BASE_LOGGING_HH
