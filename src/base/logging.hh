/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, invalid arguments), panic() is for internal
 * invariant violations that should never happen regardless of user
 * input. Because irtherm is a library rather than a standalone
 * simulator, both report via exceptions so embedding applications and
 * tests can recover; warn()/inform() print to stderr and never stop
 * the caller.
 */

#ifndef IRTHERM_BASE_LOGGING_HH
#define IRTHERM_BASE_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace irtherm
{

/** Exception thrown by fatal(): the caller asked for something invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

namespace detail
{

/** Fold a parameter pack into one message string via operator<<. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an unrecoverable user-level error (bad config, bad input).
 *
 * @param args Message fragments, concatenated via operator<<.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::formatMessage(std::forward<Args>(args)...));
}

/**
 * Report an internal invariant violation (a bug in irtherm itself).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::formatMessage(std::forward<Args>(args)...));
}

/** Print a warning to stderr; execution continues. */
void warn(const std::string &msg);

/** Print an informational message to stderr; execution continues. */
void inform(const std::string &msg);

/** Globally silence warn()/inform() (useful in tests). */
void setQuiet(bool quiet);

} // namespace irtherm

#endif // IRTHERM_BASE_LOGGING_HH
