/**
 * @file
 * Small string utilities used by file parsers and report writers.
 */

#ifndef IRTHERM_BASE_STR_HH
#define IRTHERM_BASE_STR_HH

#include <string>
#include <vector>

namespace irtherm
{

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Split on a delimiter character; empty tokens are kept. */
std::vector<std::string> split(const std::string &s, char delim);

/** Split on runs of whitespace; empty tokens are dropped. */
std::vector<std::string> splitWhitespace(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Parse a double, reporting the enclosing context via fatal() when
 * the text is not a valid number.
 */
double parseDouble(const std::string &s, const std::string &context);

/** Format a double with fixed precision (reporting helper). */
std::string formatFixed(double value, int precision);

} // namespace irtherm

#endif // IRTHERM_BASE_STR_HH
