#include "dtm/ir_camera.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"

namespace irtherm
{

double
IrFrame::maxPixel() const
{
    return *std::max_element(pixels.begin(), pixels.end());
}

double
IrFrame::minPixel() const
{
    return *std::min_element(pixels.begin(), pixels.end());
}

IrCamera::IrCamera(const IrCameraSpec &spec) : spec_(spec)
{
    if (spec_.frameInterval <= 0.0)
        fatal("IrCamera: non-positive frame interval");
    if (spec_.exposureFraction <= 0.0 || spec_.exposureFraction > 1.0)
        fatal("IrCamera: exposure fraction must be in (0, 1]");
    if (spec_.pixelBinning == 0)
        fatal("IrCamera: zero pixel binning");
}

std::vector<IrFrame>
IrCamera::capture(double sample_interval,
                  const std::vector<std::vector<double>> &fields,
                  std::size_t nx, std::size_t ny) const
{
    if (fields.empty())
        fatal("IrCamera::capture: no fields");
    if (sample_interval <= 0.0)
        fatal("IrCamera::capture: non-positive sample interval");
    if (sample_interval > spec_.frameInterval) {
        fatal("IrCamera::capture: samples coarser than the frame "
              "interval");
    }
    for (const auto &f : fields) {
        if (f.size() != nx * ny)
            fatal("IrCamera::capture: field size mismatch");
    }
    if (nx % spec_.pixelBinning != 0 || ny % spec_.pixelBinning != 0)
        fatal("IrCamera::capture: binning does not divide resolution");

    const auto samples_per_frame = static_cast<std::size_t>(
        std::round(spec_.frameInterval / sample_interval));
    const auto exposure_samples = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(
               spec_.exposureFraction *
               static_cast<double>(samples_per_frame))));

    const std::size_t bin = spec_.pixelBinning;
    const std::size_t px = nx / bin;
    const std::size_t py = ny / bin;

    std::vector<IrFrame> frames;
    for (std::size_t end = samples_per_frame; end <= fields.size();
         end += samples_per_frame) {
        // Time-average over the exposure window ending at the frame.
        std::vector<double> acc(nx * ny, 0.0);
        const std::size_t begin = end - exposure_samples;
        for (std::size_t s = begin; s < end; ++s) {
            for (std::size_t i = 0; i < acc.size(); ++i)
                acc[i] += fields[s][i];
        }
        for (double &v : acc)
            v /= static_cast<double>(exposure_samples);

        // Spatial binning.
        IrFrame frame;
        frame.time =
            static_cast<double>(end) * sample_interval;
        frame.nx = px;
        frame.ny = py;
        frame.pixels.assign(px * py, 0.0);
        for (std::size_t iy = 0; iy < ny; ++iy) {
            for (std::size_t ix = 0; ix < nx; ++ix) {
                frame.pixels[(iy / bin) * px + ix / bin] +=
                    acc[iy * nx + ix];
            }
        }
        const double cells_per_pixel =
            static_cast<double>(bin * bin);
        for (double &v : frame.pixels)
            v /= cells_per_pixel;
        IRTHERM_EVENT("dtm.ir_camera.frame",
                      {"sim_time_s", frame.time},
                      {"pixels", frame.pixels.size()});
        frames.push_back(std::move(frame));
    }
    static obs::Counter &captured =
        obs::MetricsRegistry::global().counter("dtm.ir_camera.frames");
    captured.add(frames.size());
    return frames;
}

std::size_t
countViolations(const std::vector<double> &values, double threshold)
{
    std::size_t runs = 0;
    bool in_run = false;
    for (double v : values) {
        if (v > threshold) {
            if (!in_run) {
                ++runs;
                in_run = true;
            }
        } else {
            in_run = false;
        }
    }
    return runs;
}

} // namespace irtherm
