/**
 * @file
 * On-chip thermal sensors and placement strategies.
 *
 * Sensors read the silicon temperature at a point, with optional
 * Gaussian noise and quantization. Placement strategies include
 * per-block centres, a uniform grid, and hottest-guided placement
 * from a reference thermal map — the paper's Sec. 5.3-5.4 concern is
 * exactly what happens when that reference map comes from the wrong
 * cooling configuration (IR's OIL-SILICON vs deployment's AIR-SINK).
 */

#ifndef IRTHERM_DTM_SENSOR_HH
#define IRTHERM_DTM_SENSOR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "core/stack_model.hh"

namespace irtherm
{

/** One thermal sensor at a die location. */
struct SensorSpec
{
    std::string label;
    double x = 0.0;            ///< die coordinates (m)
    double y = 0.0;
    double noiseSigma = 0.0;   ///< Gaussian read noise (K)
    double quantization = 0.0; ///< LSB size (K); 0 = continuous
};

/** A set of sensors readable against a model's silicon field. */
class SensorArray
{
  public:
    explicit SensorArray(std::vector<SensorSpec> sensors);

    std::size_t count() const { return sensors_.size(); }
    const SensorSpec &sensor(std::size_t i) const;

    /**
     * Read all sensors from a model state.
     * @param model      the stack model the temps belong to
     * @param node_temps absolute node temperatures
     * @param rng        noise source
     */
    std::vector<double> read(const StackModel &model,
                             const std::vector<double> &node_temps,
                             Rng &rng) const;

    /** Hottest sensor reading. */
    double readMax(const StackModel &model,
                   const std::vector<double> &node_temps,
                   Rng &rng) const;

  private:
    std::vector<SensorSpec> sensors_;
};

namespace placement
{

/** One noise-free sensor at the centre of every block. */
std::vector<SensorSpec> perBlockCenters(const Floorplan &fp);

/** nx x ny uniform sensor grid over the die. */
std::vector<SensorSpec> uniformGrid(const Floorplan &fp, std::size_t nx,
                                    std::size_t ny);

/**
 * Place @p count sensors greedily on the hottest locations of a
 * reference map (cell temps over the die), keeping a minimum
 * separation so sensors spread over distinct hot regions.
 *
 * @param cell_temps   reference silicon map, nx*ny row-major
 * @param nx, ny       map resolution
 * @param die_w, die_h die extent (m)
 * @param min_separation minimum sensor spacing (m)
 */
std::vector<SensorSpec>
hottestGuided(const std::vector<double> &cell_temps, std::size_t nx,
              std::size_t ny, double die_w, double die_h,
              std::size_t count, double min_separation);

/**
 * Greedy minimax placement over several workload scenarios: each
 * added sensor is the cell that most reduces the worst (over all
 * maps) gap between the true maximum and the hottest sensor
 * reading. Robust where hottestGuided overfits one map — exactly
 * the failure mode of placing sensors from a single IR snapshot
 * (paper Sec. 5.4).
 *
 * @param maps  one silicon map (nx*ny, row-major) per scenario
 */
std::vector<SensorSpec>
minimaxGuided(const std::vector<std::vector<double>> &maps,
              std::size_t nx, std::size_t ny, double die_w,
              double die_h, std::size_t count);

} // namespace placement

/**
 * Worst-case sensing error of a placement against a raw map:
 * map maximum minus the hottest sensor's cell (K, >= 0).
 */
double mapSensingError(const std::vector<double> &cell_temps,
                       std::size_t nx, std::size_t ny, double die_w,
                       double die_h,
                       const std::vector<SensorSpec> &sensors);

/**
 * Worst-case sensing error of a placement against a map: the true
 * maximum minus the hottest noise-free sensor reading (K, >= 0).
 */
double worstCaseSensingError(const StackModel &model,
                             const std::vector<double> &node_temps,
                             const std::vector<SensorSpec> &sensors);

} // namespace irtherm

#endif // IRTHERM_DTM_SENSOR_HH
