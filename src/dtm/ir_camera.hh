/**
 * @file
 * Infrared camera model.
 *
 * The paper's point about IR thermography is that the instrument
 * itself filters what you see: a frame interval of milliseconds
 * misses the ~3 ms thermal excursions of an AIR-SINK die (Sec. 5.1),
 * and finite pixels average away sharp spatial gradients. This
 * model applies exactly those two effects to a ground-truth
 * simulated field so benches can quantify what IR would have missed.
 */

#ifndef IRTHERM_DTM_IR_CAMERA_HH
#define IRTHERM_DTM_IR_CAMERA_HH

#include <cstddef>
#include <vector>

namespace irtherm
{

/** IR camera characteristics. */
struct IrCameraSpec
{
    double frameInterval = 8e-3; ///< seconds per frame (125 fps)
    /**
     * Exposure as a fraction of the frame interval; the captured
     * frame is the time-average of the field over the exposure.
     */
    double exposureFraction = 1.0;
    /** Spatial binning factor: camera pixel = factor x factor cells. */
    std::size_t pixelBinning = 1;
};

/** One captured IR frame. */
struct IrFrame
{
    double time = 0.0;           ///< frame end time (s)
    std::size_t nx = 0;          ///< pixels along x
    std::size_t ny = 0;
    std::vector<double> pixels;  ///< row-major temperatures (K)

    double maxPixel() const;
    double minPixel() const;
};

/**
 * Offline IR capture over a recorded (time, field) sequence.
 *
 * Input samples must be equally spaced and at least as fine as the
 * frame interval; each output frame averages the samples that fall
 * within its exposure window and spatially bins cells into pixels.
 */
class IrCamera
{
  public:
    explicit IrCamera(const IrCameraSpec &spec);

    /**
     * @param sample_interval spacing of the recorded fields (s)
     * @param fields          recorded silicon fields, nx*ny each
     * @param nx, ny          field resolution
     */
    std::vector<IrFrame>
    capture(double sample_interval,
            const std::vector<std::vector<double>> &fields,
            std::size_t nx, std::size_t ny) const;

    const IrCameraSpec &spec() const { return spec_; }

  private:
    IrCameraSpec spec_;
};

/**
 * Count threshold violations in a scalar trace: maximal runs of
 * consecutive samples strictly above @p threshold.
 */
std::size_t countViolations(const std::vector<double> &values,
                            double threshold);

} // namespace irtherm

#endif // IRTHERM_DTM_IR_CAMERA_HH
