#include "dtm/policy.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace irtherm
{

namespace
{

/** Process-wide DTM telemetry handles (shared by all controllers). */
struct DtmMetrics
{
    obs::Counter &steps;
    obs::Counter &engagements;
    obs::Gauge &dutyCycle;

    static DtmMetrics &
    instance()
    {
        static DtmMetrics m{
            obs::MetricsRegistry::global().counter(
                "dtm.controller.steps"),
            obs::MetricsRegistry::global().counter(
                "dtm.controller.engagements"),
            obs::MetricsRegistry::global().gauge(
                "dtm.controller.duty_cycle"),
        };
        return m;
    }
};

} // namespace

DtmController::DtmController(const DtmConfig &cfg_,
                             const std::vector<std::string> &unit_names)
    : cfg(cfg_), units(unit_names)
{
    if (cfg.samplingInterval <= 0.0)
        fatal("DtmController: non-positive sampling interval");
    if (cfg.engagementDuration <= 0.0)
        fatal("DtmController: non-positive engagement duration");
    if (cfg.action == DtmAction::Dvfs &&
        (cfg.dvfsFrequencyScale <= 0.0 || cfg.dvfsFrequencyScale > 1.0))
        fatal("DtmController: DVFS scale must be in (0, 1]");
    if (cfg.action == DtmAction::FetchGate &&
        (cfg.fetchDutyCycle <= 0.0 || cfg.fetchDutyCycle > 1.0))
        fatal("DtmController: fetch duty cycle must be in (0, 1]");

    gatedScale.assign(units.size(), 1.0);
    if (cfg.action == DtmAction::FetchGate) {
        bool any = false;
        for (std::size_t i = 0; i < units.size(); ++i) {
            const bool gated =
                std::find(cfg.gatedUnits.begin(), cfg.gatedUnits.end(),
                          units[i]) != cfg.gatedUnits.end();
            if (gated) {
                gatedScale[i] = cfg.fetchDutyCycle;
                any = true;
            } else {
                // Downstream units starve roughly with the duty cycle;
                // they keep half their slack as residual activity.
                gatedScale[i] =
                    0.5 * (1.0 + cfg.fetchDutyCycle);
            }
        }
        if (!any)
            warn("DtmController: no trace unit matches gatedUnits");
    }
}

DtmActuation
DtmController::step(double now, double sensed_max_temp)
{
    if (!first && now < lastStepTime)
        fatal("DtmController::step: time moved backwards");
    if (!first && engagedNow)
        totalEngaged += now - lastStepTime;
    lastStepTime = now;
    first = false;

    DtmMetrics &m = DtmMetrics::instance();
    m.steps.add();

    obs::ScopedSpan span("dtm.decision");
    span.attr("sim_time_s", now).attr("temp_k", sensed_max_temp);
    const bool wasEngaged = engagedNow;
    const bool hot = sensed_max_temp > cfg.triggerThreshold;
    if (engagedNow) {
        // Stay engaged for the full duration, and keep extending it
        // while the die remains hot.
        if (hot) {
            engageUntil = now + cfg.engagementDuration;
        } else if (now >= engageUntil) {
            engagedNow = false;
            IRTHERM_EVENT("dtm.disengage", {"sim_time_s", now},
                          {"temp_k", sensed_max_temp});
        }
    } else if (hot && cfg.action != DtmAction::None) {
        engagedNow = true;
        engageUntil = now + cfg.engagementDuration;
        ++engageCount;
        m.engagements.add();
        IRTHERM_EVENT("dtm.engage", {"sim_time_s", now},
                      {"temp_k", sensed_max_temp},
                      {"threshold_k", cfg.triggerThreshold});
    }
    if (now > 0.0)
        m.dutyCycle.set(totalEngaged / now);
    span.attr("engaged", engagedNow ? "yes" : "no")
        .attr("transition", engagedNow == wasEngaged ? "hold"
                            : engagedNow             ? "engage"
                                                     : "disengage");

    DtmActuation act;
    if (engagedNow) {
        switch (cfg.action) {
          case DtmAction::Dvfs:
            act.frequencyScale = cfg.dvfsFrequencyScale;
            // Voltage tracks frequency (linear V-f relation).
            act.voltageScale = cfg.dvfsFrequencyScale;
            break;
          case DtmAction::FetchGate:
            act.unitScale = gatedScale;
            break;
          case DtmAction::GlobalGate:
            act.frequencyScale = 1e-3; // clock effectively stopped
            break;
          case DtmAction::None:
            break;
        }
    }
    return act;
}

double
DtmController::performancePenalty(double total_time) const
{
    if (total_time <= 0.0)
        fatal("performancePenalty: non-positive total time");
    double rate = 0.0;
    switch (cfg.action) {
      case DtmAction::Dvfs:
        rate = 1.0 / cfg.dvfsFrequencyScale - 1.0;
        break;
      case DtmAction::FetchGate:
        rate = 1.0 / cfg.fetchDutyCycle - 1.0;
        break;
      case DtmAction::GlobalGate:
        rate = 1e3;
        break;
      case DtmAction::None:
        return 0.0;
    }
    return rate * totalEngaged / total_time;
}

} // namespace irtherm
