/**
 * @file
 * Dynamic thermal management policies.
 *
 * A DtmController watches a (sensor-derived) temperature at a fixed
 * sampling interval; when the trigger threshold is crossed it
 * engages an actuator for a fixed engagement duration and keeps
 * re-engaging while the temperature stays above threshold. The
 * actuator is expressed as a per-unit power multiplier so it
 * composes with any power trace.
 *
 * Performance accounting follows the standard simplifications:
 * DVFS at frequency scale f costs 1/f - 1 extra time while engaged;
 * fetch gating at duty cycle d costs 1/d - 1; global clock gating
 * stalls completely.
 */

#ifndef IRTHERM_DTM_POLICY_HH
#define IRTHERM_DTM_POLICY_HH

#include <cstddef>
#include <string>
#include <vector>

namespace irtherm
{

/** What the DTM mechanism does when engaged. */
enum class DtmAction
{
    None,      ///< monitoring only
    Dvfs,      ///< scale voltage and frequency together
    FetchGate, ///< duty-cycle the front end
    GlobalGate ///< stop the clock entirely
};

/** DTM policy parameters (the paper's Sec. 5 design knobs). */
struct DtmConfig
{
    DtmAction action = DtmAction::Dvfs;
    double triggerThreshold = 0.0;   ///< engage above this (K)
    double samplingInterval = 60e-6; ///< sensor poll period (s)
    double engagementDuration = 1e-3;///< minimum time engaged (s)
    double dvfsFrequencyScale = 0.5; ///< f/f0 while engaged
    double fetchDutyCycle = 0.5;     ///< fetch-on fraction while engaged
    /** Units throttled by FetchGate (front-end names). */
    std::vector<std::string> gatedUnits = {"Icache", "Bpred", "ITB"};
};

/** Multipliers to apply to a power sample while (dis)engaged. */
struct DtmActuation
{
    double voltageScale = 1.0;
    double frequencyScale = 1.0;
    /** Extra per-unit multiplier (FetchGate); empty = all ones. */
    std::vector<double> unitScale;
};

/**
 * Threshold-trigger DTM controller with engagement-duration
 * hysteresis and performance-penalty accounting.
 */
class DtmController
{
  public:
    /**
     * @param cfg        policy parameters
     * @param unit_names the trace's unit order (for FetchGate)
     */
    DtmController(const DtmConfig &cfg,
                  const std::vector<std::string> &unit_names);

    /**
     * Advance the controller to time @p now with the latest sensed
     * maximum temperature; returns the actuation to apply until the
     * next call. Call at the sampling interval.
     */
    DtmActuation step(double now, double sensed_max_temp);

    bool engaged() const { return engagedNow; }

    /** Total time spent engaged (s). */
    double engagedTime() const { return totalEngaged; }

    /** Number of distinct engagements. */
    std::size_t engagements() const { return engageCount; }

    /**
     * Estimated execution-time overhead: extra time / useful time,
     * given total observed time @p total_time.
     */
    double performancePenalty(double total_time) const;

  private:
    DtmConfig cfg;
    std::vector<std::string> units;
    std::vector<double> gatedScale; ///< per-unit multiplier template

    bool engagedNow = false;
    double engageUntil = 0.0;
    double lastStepTime = 0.0;
    bool first = true;
    double totalEngaged = 0.0;
    std::size_t engageCount = 0;
};

} // namespace irtherm

#endif // IRTHERM_DTM_POLICY_HH
