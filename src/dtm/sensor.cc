#include "dtm/sensor.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"

namespace irtherm
{

namespace
{

/**
 * Silicon temperature at a die point: the partition cell containing
 * it (grid mode: the grid cell, block mode: the functional block).
 */
double
siliconTemperatureAt(const StackModel &model,
                     const std::vector<double> &node_temps, double x,
                     double y)
{
    const std::vector<double> cells =
        model.siliconCellTemperatures(node_temps);
    const std::vector<Block> &part = model.partition();
    for (std::size_t i = 0; i < part.size(); ++i) {
        const Block &b = part[i];
        if (x >= b.x && x < b.right() && y >= b.y && y < b.top())
            return cells[i];
    }
    fatal("sensor at (", x, ",", y, ") lies outside the die");
}

} // namespace

SensorArray::SensorArray(std::vector<SensorSpec> sensors)
    : sensors_(std::move(sensors))
{
    if (sensors_.empty())
        fatal("SensorArray: no sensors");
}

const SensorSpec &
SensorArray::sensor(std::size_t i) const
{
    return sensors_.at(i);
}

std::vector<double>
SensorArray::read(const StackModel &model,
                  const std::vector<double> &node_temps, Rng &rng) const
{
    static obs::Counter &reads =
        obs::MetricsRegistry::global().counter("dtm.sensor.reads");
    reads.add(sensors_.size());
    std::vector<double> out(sensors_.size());
    for (std::size_t i = 0; i < sensors_.size(); ++i) {
        const SensorSpec &s = sensors_[i];
        double t = siliconTemperatureAt(model, node_temps, s.x, s.y);
        if (s.noiseSigma > 0.0)
            t += rng.gaussian(0.0, s.noiseSigma);
        if (s.quantization > 0.0)
            t = std::round(t / s.quantization) * s.quantization;
        out[i] = t;
    }
    return out;
}

double
SensorArray::readMax(const StackModel &model,
                     const std::vector<double> &node_temps,
                     Rng &rng) const
{
    const std::vector<double> r = read(model, node_temps, rng);
    const double sensed = *std::max_element(r.begin(), r.end());
    IRTHERM_EVENT("dtm.sensor.read_max", {"temp_k", sensed},
                  {"sensors", r.size()});
    return sensed;
}

namespace placement
{

std::vector<SensorSpec>
perBlockCenters(const Floorplan &fp)
{
    std::vector<SensorSpec> out;
    out.reserve(fp.blockCount());
    for (const Block &b : fp.blocks())
        out.push_back({b.name, b.centerX(), b.centerY(), 0.0, 0.0});
    return out;
}

std::vector<SensorSpec>
uniformGrid(const Floorplan &fp, std::size_t nx, std::size_t ny)
{
    if (nx == 0 || ny == 0)
        fatal("placement::uniformGrid: zero dimension");
    std::vector<SensorSpec> out;
    const double dx = fp.width() / static_cast<double>(nx);
    const double dy = fp.height() / static_cast<double>(ny);
    for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
            out.push_back({"s" + std::to_string(ix) + "_" +
                               std::to_string(iy),
                           (static_cast<double>(ix) + 0.5) * dx,
                           (static_cast<double>(iy) + 0.5) * dy, 0.0,
                           0.0});
        }
    }
    return out;
}

std::vector<SensorSpec>
hottestGuided(const std::vector<double> &cell_temps, std::size_t nx,
              std::size_t ny, double die_w, double die_h,
              std::size_t count, double min_separation)
{
    if (cell_temps.size() != nx * ny)
        fatal("placement::hottestGuided: map size mismatch");
    if (count == 0)
        fatal("placement::hottestGuided: zero sensor count");

    // Cells sorted hottest first.
    std::vector<std::size_t> order(cell_temps.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return cell_temps[a] > cell_temps[b];
              });

    const double dx = die_w / static_cast<double>(nx);
    const double dy = die_h / static_cast<double>(ny);
    std::vector<SensorSpec> out;
    for (std::size_t idx : order) {
        if (out.size() >= count)
            break;
        const double x =
            (static_cast<double>(idx % nx) + 0.5) * dx;
        const double y =
            (static_cast<double>(idx / nx) + 0.5) * dy;
        bool keep = true;
        for (const SensorSpec &s : out) {
            const double d =
                std::hypot(x - s.x, y - s.y);
            if (d < min_separation) {
                keep = false;
                break;
            }
        }
        if (keep) {
            out.push_back({"hot" + std::to_string(out.size()), x, y,
                           0.0, 0.0});
        }
    }
    if (out.size() < count) {
        warn("placement::hottestGuided: only ", out.size(), " of ",
             count, " sensors placed");
    }
    return out;
}

std::vector<SensorSpec>
minimaxGuided(const std::vector<std::vector<double>> &maps,
              std::size_t nx, std::size_t ny, double die_w,
              double die_h, std::size_t count)
{
    if (maps.empty())
        fatal("placement::minimaxGuided: no maps");
    if (count == 0)
        fatal("placement::minimaxGuided: zero sensor count");
    for (const auto &m : maps) {
        if (m.size() != nx * ny)
            fatal("placement::minimaxGuided: map size mismatch");
    }

    const double dx = die_w / static_cast<double>(nx);
    const double dy = die_h / static_cast<double>(ny);
    std::vector<double> map_max(maps.size());
    for (std::size_t m = 0; m < maps.size(); ++m) {
        map_max[m] =
            *std::max_element(maps[m].begin(), maps[m].end());
    }

    // best_reading[m]: hottest sensor cell chosen so far, per map.
    std::vector<double> best_reading(maps.size(), -1e300);
    std::vector<SensorSpec> out;
    for (std::size_t k = 0; k < count; ++k) {
        double best_worst = 1e300;
        std::size_t best_cell = 0;
        for (std::size_t cell = 0; cell < nx * ny; ++cell) {
            double worst = 0.0;
            for (std::size_t m = 0; m < maps.size(); ++m) {
                const double reading =
                    std::max(best_reading[m], maps[m][cell]);
                worst = std::max(worst, map_max[m] - reading);
            }
            if (worst < best_worst) {
                best_worst = worst;
                best_cell = cell;
            }
        }
        for (std::size_t m = 0; m < maps.size(); ++m) {
            best_reading[m] =
                std::max(best_reading[m], maps[m][best_cell]);
        }
        out.push_back(
            {"mm" + std::to_string(k),
             (static_cast<double>(best_cell % nx) + 0.5) * dx,
             (static_cast<double>(best_cell / nx) + 0.5) * dy, 0.0,
             0.0});
    }
    return out;
}

} // namespace placement

double
mapSensingError(const std::vector<double> &cell_temps, std::size_t nx,
                std::size_t ny, double die_w, double die_h,
                const std::vector<SensorSpec> &sensors)
{
    if (cell_temps.size() != nx * ny)
        fatal("mapSensingError: map size mismatch");
    if (sensors.empty())
        fatal("mapSensingError: no sensors");
    const double dx = die_w / static_cast<double>(nx);
    const double dy = die_h / static_cast<double>(ny);
    double sensed = -1e300;
    for (const SensorSpec &s : sensors) {
        const auto ix = std::min(
            nx - 1, static_cast<std::size_t>(
                        std::max(0.0, std::floor(s.x / dx))));
        const auto iy = std::min(
            ny - 1, static_cast<std::size_t>(
                        std::max(0.0, std::floor(s.y / dy))));
        sensed = std::max(sensed, cell_temps[iy * nx + ix]);
    }
    const double true_max =
        *std::max_element(cell_temps.begin(), cell_temps.end());
    return std::max(0.0, true_max - sensed);
}

double
worstCaseSensingError(const StackModel &model,
                      const std::vector<double> &node_temps,
                      const std::vector<SensorSpec> &sensors)
{
    const std::vector<double> cells =
        model.siliconCellTemperatures(node_temps);
    const double true_max =
        *std::max_element(cells.begin(), cells.end());

    SensorArray arr(sensors);
    Rng rng; // sensors are noise-free in this metric
    const double sensed =
        arr.readMax(model, node_temps, rng);
    return std::max(0.0, true_max - sensed);
}

} // namespace irtherm
