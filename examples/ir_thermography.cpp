/**
 * @file
 * IR thermography session: what the camera sees vs what the silicon
 * does.
 *
 * An oil-cooled EV6-like die runs a bursty workload; the true
 * silicon field is recorded at 1 kHz while an IR camera model
 * (125 fps, full-frame exposure, 2x2 pixel binning) captures frames.
 * The example counts the thermal-threshold violations present in
 * the ground truth that the camera never shows — the paper's
 * Sec. 2.2/5.1 warning about the camera's limited sampling rate.
 *
 * Run: ./ir_thermography   (writes ir_frame_last.ppm)
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "analysis/thermal_map.hh"
#include "base/units.hh"
#include "core/package.hh"
#include "core/simulator.hh"
#include "core/stack_model.hh"
#include "dtm/ir_camera.hh"
#include "floorplan/presets.hh"
#include "power/synthetic_cpu.hh"
#include "power/wattch_model.hh"

using namespace irtherm;

int
main()
{
    const Floorplan fp = floorplans::alphaEv6();
    const WattchPowerModel pm = WattchPowerModel::alphaEv6();

    // A deliberately bursty trace: alternate hot and cool phases a
    // few milliseconds long (the scale an IR camera cannot resolve).
    SyntheticCpu cpu(pm, workloads::gcc());
    const PowerTrace base = cpu.generate(4000).reorderedFor(fp);

    ModelOptions mo;
    mo.mode = ModelMode::Grid;
    mo.gridNx = 16;
    mo.gridNy = 16;
    SimulatorOptions so;
    so.implicitStep = 1e-3;
    const StackModel model(
        fp,
        PackageConfig::makeOilSilicon(10.0,
                                      FlowDirection::LeftToRight,
                                      45.0),
        mo);
    ThermalSimulator sim(model, so);
    sim.initializeSteady(base.averagePowers());

    // Record the true field at 1 kHz for 0.4 s while pulsing the
    // integer core 4 ms on / 12 ms off on top of the base trace.
    const double dt = 1e-3;
    std::vector<std::vector<double>> fields;
    std::vector<double> truth_max;
    std::vector<double> avg = base.averagePowers();
    for (int ms = 0; ms < 400; ++ms) {
        std::vector<double> p = avg;
        if (ms % 16 < 4) {
            p[fp.blockIndex("IntReg")] *= 3.0;
            p[fp.blockIndex("IntExec")] *= 3.0;
        }
        sim.setBlockPowers(p);
        sim.advance(dt);
        const auto nodes = sim.nodeTemperatures();
        fields.push_back(model.siliconCellTemperatures(nodes));
        truth_max.push_back(sim.maxSiliconTemperature());
    }

    // The camera: 125 fps, full exposure, 2x2 binning.
    IrCameraSpec spec;
    spec.frameInterval = 8e-3;
    spec.exposureFraction = 1.0;
    spec.pixelBinning = 2;
    IrCamera camera(spec);
    const auto frames = camera.capture(dt, fields, 16, 16);

    std::vector<double> camera_max;
    camera_max.reserve(frames.size());
    for (const IrFrame &f : frames)
        camera_max.push_back(f.maxPixel());

    const double true_peak =
        *std::max_element(truth_max.begin(), truth_max.end());
    const double camera_peak =
        *std::max_element(camera_max.begin(), camera_max.end());

    std::printf("recorded %zu ms of silicon truth, %zu IR frames at "
                "%.0f fps\n",
                fields.size(), frames.size(),
                1.0 / spec.frameInterval);
    std::printf("peak temperature: truth %.1f C, camera %.1f C "
                "(exposure averaging hides %.1f K of the excursion)\n",
                toCelsius(true_peak), toCelsius(camera_peak),
                true_peak - camera_peak);

    // Any threshold between the two peaks is violated by the silicon
    // but never displayed by the camera.
    const double threshold = 0.5 * (true_peak + camera_peak);
    std::size_t hidden_ms = 0;
    for (double t : truth_max) {
        if (t > threshold)
            ++hidden_ms;
    }
    std::printf("threshold %.1f C: silicon spends %zu ms above it; "
                "the camera reports %zu violation frames\n",
                toCelsius(threshold), hidden_ms,
                countViolations(camera_max, threshold));

    // Dump the last frame as a false-colour image.
    ThermalMap map;
    map.nx = frames.back().nx;
    map.ny = frames.back().ny;
    map.width = fp.width();
    map.height = fp.height();
    map.temps = frames.back().pixels;
    std::ofstream ppm("ir_frame_last.ppm");
    map.writePpm(ppm);
    std::printf("last frame written to ir_frame_last.ppm\n");

    std::printf("\nTakeaway (paper Sec. 5.1): excursions shorter "
                "than the frame interval are averaged away — IR "
                "measurements alone can miss thermal emergencies "
                "that a simulator (or on-die sensing at the Sec. 5.2 "
                "rate) would catch.\n");
    return 0;
}
