/**
 * @file
 * Quickstart: build a floorplan, pick the two cooling configurations
 * the paper compares, and print steady-state block temperatures for
 * the same power map under both.
 *
 * Run: ./quickstart
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "base/units.hh"
#include "core/package.hh"
#include "core/stack_model.hh"
#include "floorplan/presets.hh"

using namespace irtherm;

int
main()
{
    // 1. A floorplan: the built-in Alpha EV6-like die.
    const Floorplan fp = floorplans::alphaEv6();

    // 2. A power map: a hot integer core, everything else modest.
    std::vector<double> powers(fp.blockCount(), 0.5);
    powers[fp.blockIndex("IntReg")] = 10.0;
    powers[fp.blockIndex("IntExec")] = 8.0;
    powers[fp.blockIndex("Dcache")] = 6.0;
    powers[fp.blockIndex("L2")] = 4.0;

    // 3. Two packages with the same case-to-ambient resistance: the
    //    conventional heatsink, and the IR-imaging oil flow.
    const double rconv = 1.0; // K/W
    const PackageConfig air = PackageConfig::makeAirSink(rconv, 45.0);
    const double velocity = oilVelocityForResistance(
        fluids::irTransparentOil(), fp.width(),
        fp.width() * fp.height(), rconv);
    const PackageConfig oil = PackageConfig::makeOilSilicon(
        velocity, FlowDirection::LeftToRight, 45.0);

    // 4. Grid-mode models and steady solves.
    ModelOptions opts;
    opts.mode = ModelMode::Grid;
    opts.gridNx = 16;
    opts.gridNy = 16;
    const StackModel air_model(fp, air, opts);
    const StackModel oil_model(fp, oil, opts);

    const std::vector<double> t_air =
        air_model.steadyBlockTemperatures(powers);
    const std::vector<double> t_oil =
        oil_model.steadyBlockTemperatures(powers);

    std::cout << "Same die, same power, same Rconv = " << rconv
              << " K/W (oil velocity " << velocity << " m/s)\n\n";
    TextTable table({"unit", "P (W)", "AIR-SINK (C)", "OIL-SILICON (C)"});
    for (std::size_t b = 0; b < fp.blockCount(); ++b) {
        table.addRow(fp.block(b).name,
                     {powers[b], toCelsius(t_air[b]),
                      toCelsius(t_oil[b])});
    }
    table.print(std::cout);

    std::cout << "\nNote the far larger spread under OIL-SILICON: "
                 "that is the paper's headline observation.\n";
    return 0;
}
