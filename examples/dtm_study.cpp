/**
 * @file
 * DTM policy study: how the package choice changes dynamic thermal
 * management (the paper's Sec. 5 in example form).
 *
 * A gcc-like workload runs on the cycle-approximate pipeline
 * simulator; its power trace replays through an EV6-like die under
 * AIR-SINK and OIL-SILICON at equal Rconv, with a closed-loop DTM
 * controller. Two policies (DVFS, fetch gating) are compared on
 * violation time and performance penalty.
 *
 * Run: ./dtm_study
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "core/package.hh"
#include "core/simulator.hh"
#include "core/stack_model.hh"
#include "dtm/policy.hh"
#include "floorplan/presets.hh"
#include "power/pipeline.hh"
#include "power/wattch_model.hh"

using namespace irtherm;

namespace
{

struct Outcome
{
    double violationFraction = 0.0;
    double penalty = 0.0;
    std::size_t engagements = 0;
};

Outcome
runPolicy(const StackModel &model, const PowerTrace &trace,
          DtmAction action, double threshold)
{
    const Floorplan &fp = model.floorplan();
    const std::size_t hot = fp.blockIndex("IntReg");

    DtmConfig cfg;
    cfg.action = action;
    cfg.triggerThreshold = threshold;
    cfg.samplingInterval = 60e-6;
    cfg.engagementDuration = 2e-3;
    DtmController ctrl(cfg, trace.unitNames());

    ThermalSimulator sim(model);
    sim.initializeSteady(trace.averagePowers());

    const double dt = trace.sampleInterval();
    const auto per_poll = static_cast<std::size_t>(
        std::max(1.0, std::round(cfg.samplingInterval / dt)));

    Outcome out;
    std::size_t violations = 0;
    DtmActuation act;
    for (std::size_t s = 0; s < trace.sampleCount(); ++s) {
        if (s % per_poll == 0) {
            act = ctrl.step(static_cast<double>(s) * dt,
                            sim.blockTemperatures()[hot]);
        }
        std::vector<double> p = trace.sample(s);
        for (std::size_t u = 0; u < p.size(); ++u) {
            p[u] *= act.voltageScale * act.voltageScale *
                    act.frequencyScale;
            if (!act.unitScale.empty())
                p[u] *= act.unitScale[u];
        }
        sim.setBlockPowers(p);
        sim.advance(dt);
        if (sim.blockTemperatures()[hot] > threshold)
            ++violations;
    }
    out.violationFraction =
        static_cast<double>(violations) /
        static_cast<double>(trace.sampleCount());
    out.penalty = ctrl.performancePenalty(
        static_cast<double>(trace.sampleCount()) * dt);
    out.engagements = ctrl.engagements();
    return out;
}

} // namespace

int
main()
{
    // Workload: the pipeline simulator running a gcc-like stream.
    const Floorplan fp = floorplans::alphaEv6();
    const WattchPowerModel pm = WattchPowerModel::alphaEv6();
    PipelineSimulator cpu(PipelineConfig{},
                          InstructionStream(workloads::gcc()));
    const PowerTrace trace =
        cpu.generateTrace(pm, 20000, 10000).reorderedFor(fp);
    std::printf("pipeline-simulated gcc: %.1f W average\n\n",
                trace.averageTotalPower());

    setQuiet(true);
    const double v = oilVelocityForResistance(
        fluids::irTransparentOil(), fp.width(),
        fp.width() * fp.height(), 0.3);
    const StackModel air(fp, PackageConfig::makeAirSink(0.3, 45.0));
    const StackModel oil(
        fp, PackageConfig::makeOilSilicon(
                v, FlowDirection::LeftToRight, 45.0));
    setQuiet(false);

    // Threshold: the hot block's open-loop 90th percentile, so the
    // closed loop sees genuine (but survivable) emergencies.
    const std::size_t hot = fp.blockIndex("IntReg");
    auto p90_threshold = [&](const StackModel &model) {
        ThermalSimulator sim(model);
        sim.initializeSteady(trace.averagePowers());
        std::vector<double> temps;
        for (std::size_t s = 0; s < trace.sampleCount(); ++s) {
            sim.setBlockPowers(trace.sample(s));
            sim.advance(trace.sampleInterval());
            temps.push_back(sim.blockTemperatures()[hot]);
        }
        std::sort(temps.begin(), temps.end());
        return temps[temps.size() * 9 / 10];
    };
    const double air_thr = p90_threshold(air);
    const double oil_thr = p90_threshold(oil);
    std::printf("thresholds (open-loop p90 of IntReg): AIR %.1f C, "
                "OIL %.1f C\n\n",
                toCelsius(air_thr), toCelsius(oil_thr));

    TextTable table({"package / policy", "violation %", "penalty %",
                     "engagements"});
    for (DtmAction action : {DtmAction::Dvfs, DtmAction::FetchGate}) {
        const char *pname =
            action == DtmAction::Dvfs ? "DVFS 0.5x" : "fetch gate 0.5";
        const Outcome a = runPolicy(air, trace, action, air_thr);
        const Outcome o = runPolicy(oil, trace, action, oil_thr);
        table.addRow(std::string("AIR-SINK / ") + pname,
                     {100.0 * a.violationFraction, 100.0 * a.penalty,
                      static_cast<double>(a.engagements)});
        table.addRow(std::string("OIL-SILICON / ") + pname,
                     {100.0 * o.violationFraction, 100.0 * o.penalty,
                      static_cast<double>(o.engagements)});
    }
    table.print(std::cout);

    std::printf("\nTakeaway (paper Sec. 5.1): the same policy tuned "
                "on the IR rig's thermal behaviour would be "
                "mis-tuned for the shipping heatsink package.\n");
    return 0;
}
