/**
 * @file
 * Sensor fusion: the paper's Sec. 5.4 recommendation — "combine IR
 * and sensor measurements and thermal modeling" — in action.
 *
 * A 4-sensor budget cannot watch every unit (Sec. 5.3). This
 * example runs a workload the sensors were not tuned for, then
 * reconstructs the full-die state from the four readings using the
 * thermal model and an IR-derived prior power budget. The estimate
 * finds the unwatched hot spot that raw sensor readout misses.
 *
 * Run: ./sensor_fusion
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/estimator.hh"
#include "base/str.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "core/package.hh"
#include "core/stack_model.hh"
#include "dtm/sensor.hh"
#include "floorplan/presets.hh"
#include "power/synthetic_cpu.hh"
#include "power/wattch_model.hh"

using namespace irtherm;

int
main()
{
    const Floorplan fp = floorplans::alphaEv6();
    const WattchPowerModel pm = WattchPowerModel::alphaEv6();
    ModelOptions mo;
    mo.mode = ModelMode::Grid;
    mo.gridNx = 16;
    mo.gridNy = 16;
    // Steep-gradient configuration (bare die under oil): this is
    // where a misplaced sensor budget hurts most (Sec. 5.3).
    const StackModel model(
        fp,
        PackageConfig::makeOilSilicon(10.0,
                                      FlowDirection::LeftToRight,
                                      45.0),
        mo);

    // The prior: the design-time power budget, taken from an art
    // (floating-point) characterization run on the IR rig.
    SyntheticCpu art_cpu(pm, workloads::art());
    const std::vector<double> prior =
        art_cpu.generate(5000).reorderedFor(fp).averagePowers();

    // Today's workload is gcc — integer-heavy, so the unwatched
    // IntReg is the real hot spot.
    SyntheticCpu gcc_cpu(pm, workloads::gcc());
    const std::vector<double> truth =
        gcc_cpu.generate(5000).reorderedFor(fp).averagePowers();
    const auto true_temps = model.steadyBlockTemperatures(truth);

    // Four sensors placed for the *floating-point* hot spots.
    std::vector<SensorSpec> sensors;
    std::vector<double> readings;
    for (const char *name : {"FPMul", "FPAdd", "Dcache", "L2"}) {
        const Block &b = fp.block(fp.blockIndex(name));
        sensors.push_back({name, b.centerX(), b.centerY(), 0.0, 0.0});
        readings.push_back(true_temps[fp.blockIndex(name)]);
    }

    ModelAssistedEstimator estimator(model, sensors, prior, 1e-2);
    const EstimatedState state = estimator.estimate(readings);

    TextTable table(
        {"unit", "true T (C)", "estimated T (C)", "sensed?"});
    for (std::size_t b = 0; b < fp.blockCount(); ++b) {
        const bool is_sensed =
            std::find(estimator.sensedBlocks().begin(),
                      estimator.sensedBlocks().end(),
                      b) != estimator.sensedBlocks().end();
        table.addRow({fp.block(b).name,
                      formatFixed(toCelsius(true_temps[b]), 1),
                      formatFixed(
                          toCelsius(state.blockTemperatures[b]), 1),
                      is_sensed ? "yes" : ""});
    }
    table.print(std::cout);

    // Compare hot-spot views.
    auto hottest = [&](const std::vector<double> &t) {
        return static_cast<std::size_t>(
            std::max_element(t.begin(), t.end()) - t.begin());
    };
    const std::size_t true_hot = hottest(true_temps);
    const std::size_t est_hot = hottest(state.blockTemperatures);
    const double sensed_max =
        *std::max_element(readings.begin(), readings.end());

    std::printf("\ntrue hottest unit: %s at %.1f C\n",
                fp.block(true_hot).name.c_str(),
                toCelsius(true_temps[true_hot]));
    std::printf("raw sensors report at most %.1f C (miss: %.1f K)\n",
                toCelsius(sensed_max),
                true_temps[true_hot] - sensed_max);
    std::printf("fusion estimate: hottest %s at %.1f C (miss: %.1f "
                "K)\n",
                fp.block(est_hot).name.c_str(),
                toCelsius(state.blockTemperatures[est_hot]),
                std::abs(true_temps[true_hot] -
                         state.blockTemperatures[est_hot]));
    std::printf("\nTakeaway: the model fills in what the sensor "
                "budget cannot watch — the combination the paper's "
                "Sec. 5.4 calls for.\n");
    return 0;
}
