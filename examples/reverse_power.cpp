/**
 * @file
 * Power reverse-engineering from a thermal map, and carrying the
 * result across packages.
 *
 * The workflow of Hamann et al. / Mesa-Martinez et al. that the
 * paper discusses: measure a steady IR map on the oil rig, invert
 * it to per-block powers, then (the paper's Sec. 6 future work)
 * predict what the same workload does inside the shipping AIR-SINK
 * package.
 *
 * Run: ./reverse_power
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/inversion.hh"
#include "analysis/transfer.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "core/package.hh"
#include "core/stack_model.hh"
#include "floorplan/presets.hh"
#include "power/synthetic_cpu.hh"
#include "power/wattch_model.hh"

using namespace irtherm;

int
main()
{
    const Floorplan fp = floorplans::alphaEv6();
    const WattchPowerModel pm = WattchPowerModel::alphaEv6();
    SyntheticCpu cpu(pm, workloads::gcc());
    const std::vector<double> true_powers =
        cpu.generate(10000).reorderedFor(fp).averagePowers();

    ModelOptions mo;
    mo.mode = ModelMode::Grid;
    mo.gridNx = 24;
    mo.gridNy = 24;

    // The IR rig: oil flowing left to right.
    const StackModel rig(
        fp,
        PackageConfig::makeOilSilicon(10.0,
                                      FlowDirection::LeftToRight,
                                      40.0),
        mo);
    // The deployment package.
    const StackModel deployment(
        fp, PackageConfig::makeAirSink(1.0, 40.0), mo);

    // "Measure" the rig map and invert it.
    const auto measured = rig.steadyBlockTemperatures(true_powers);
    PowerInversion inversion(rig);
    const auto estimated = inversion.estimatePowers(measured);

    TextTable table({"unit", "measured T (C)", "true P (W)",
                     "estimated P (W)"});
    for (std::size_t b = 0; b < fp.blockCount(); ++b) {
        table.addRow(fp.block(b).name,
                     {toCelsius(measured[b]), true_powers[b],
                      estimated[b]});
    }
    table.print(std::cout);

    // Carry the estimate into the deployment package.
    const PackageTransfer transfer(rig, deployment);
    const auto predicted = transfer.predictDeployment(measured);
    const auto actual =
        deployment.steadyBlockTemperatures(true_powers);

    double max_err = 0.0;
    std::size_t hot_pred = 0, hot_true = 0;
    for (std::size_t b = 0; b < fp.blockCount(); ++b) {
        max_err = std::max(max_err,
                           std::abs(predicted[b] - actual[b]));
        if (predicted[b] > predicted[hot_pred])
            hot_pred = b;
        if (actual[b] > actual[hot_true])
            hot_true = b;
    }
    std::printf("\npredicted AIR-SINK hottest unit: %s at %.1f C "
                "(actual: %s at %.1f C); worst block error %.2f K\n",
                fp.block(hot_pred).name.c_str(),
                toCelsius(predicted[hot_pred]),
                fp.block(hot_true).name.c_str(),
                toCelsius(actual[hot_true]), max_err);

    std::printf("\nTakeaway: with the rig's flow direction modeled, "
                "IR maps invert cleanly to powers and transfer to "
                "the deployment package — the reconciliation the "
                "paper's conclusion asks for. Drop the direction "
                "(see bench_sec54) and the recovered powers grow a "
                "downstream bias.\n");
    return 0;
}
