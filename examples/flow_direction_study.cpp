/**
 * @file
 * Flow-direction study driven by a config file.
 *
 * Demonstrates the text-config workflow: a base configuration is
 * written (as a user would keep beside a floorplan), re-loaded, and
 * swept across the four oil-flow directions. For each direction the
 * example reports the hottest unit and writes a thermal map — the
 * paper's Fig. 11 as an interactive tool.
 *
 * Run: ./flow_direction_study   (writes flow_<dir>.ppm + .config)
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/thermal_map.hh"
#include "base/str.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "core/config_io.hh"
#include "core/package.hh"
#include "core/stack_model.hh"
#include "floorplan/presets.hh"
#include "power/synthetic_cpu.hh"
#include "power/wattch_model.hh"

using namespace irtherm;

int
main()
{
    // Write the base config the way a user would author it.
    {
        std::ofstream out("flow_study.config");
        out << "# oil-flow study base configuration\n"
               "cooling oil\n"
               "ambient 40.0\n"
               "oil_velocity 10.0\n"
               "model_mode grid\n"
               "grid_nx 32\n"
               "grid_ny 32\n";
    }
    SimulationConfig cfg = loadConfig("flow_study.config");
    std::printf("loaded flow_study.config: oil at %.1f m/s, grid "
                "%zux%zu\n\n",
                cfg.package.oilFlow.velocity, cfg.model.gridNx,
                cfg.model.gridNy);

    const Floorplan fp = floorplans::alphaEv6();
    const WattchPowerModel pm = WattchPowerModel::alphaEv6();
    SyntheticCpu cpu(pm, workloads::gcc());
    const std::vector<double> powers =
        cpu.generate(10000).reorderedFor(fp).averagePowers();

    TextTable table({"direction", "hottest unit", "T_hot (C)",
                     "dT across die (C)"});
    for (FlowDirection dir :
         {FlowDirection::LeftToRight, FlowDirection::RightToLeft,
          FlowDirection::BottomToTop, FlowDirection::TopToBottom}) {
        cfg.package.oilFlow.direction = dir;
        const StackModel model(fp, cfg.package, cfg.model);
        const auto nodes = model.steadyNodeTemperatures(powers);
        const auto blocks = model.blockTemperatures(nodes);

        std::size_t hot = 0;
        for (std::size_t b = 1; b < blocks.size(); ++b) {
            if (blocks[b] > blocks[hot])
                hot = b;
        }
        const ThermalMap map = ThermalMap::fromModel(model, nodes);
        table.addRow({flowDirectionName(dir), fp.block(hot).name,
                      formatFixed(toCelsius(blocks[hot]), 1),
                      formatFixed(map.gradient(), 1)});

        std::ofstream ppm(std::string("flow_") +
                          flowDirectionName(dir) + ".ppm");
        map.writePpm(ppm);
    }
    table.print(std::cout);

    std::printf("\nTakeaway (paper Sec. 4.2/5.4): place on-die "
                "sensors from an IR map without knowing the rig's "
                "flow direction and you may instrument the wrong "
                "unit entirely.\n");
    return 0;
}
